//! MHLA step 1: selection and assignment of arrays and copy candidates to
//! memory layers.
//!
//! Two search procedures over the same move space:
//!
//! * [`greedy`] — the published steering: repeatedly apply the feasible
//!   move with the best `gain / extra on-chip bytes` ratio until no move
//!   improves the objective. This is the DATE 2003 heuristic the prototype
//!   tool uses.
//! * [`exhaustive`] — branch-and-bound over per-array options; exact on
//!   small instances, used to validate the greedy and for the optimality
//!   tests.
//!
//! A *move* either stages a copy chain for an array into on-chip layers or
//! re-homes an internal array on-chip. Feasibility = every on-chip layer's
//! residents fit after in-place optimization ([`CostModel::check_capacity`]).

use std::collections::HashMap;

use mhla_hierarchy::LayerId;
use mhla_ir::ArrayId;

use crate::classify::ArrayClass;
use crate::cost::{CostBreakdown, CostModel, IncrementalCost};
use crate::types::{mark_layer, Assignment, MhlaConfig, Objective, SelectedCopy, TransferPolicy};
use crate::workspace::EvalWorkspace;

impl Objective {
    /// Scalar score of a cost breakdown (lower is better).
    pub fn score(&self, cost: &CostBreakdown) -> f64 {
        match self {
            Objective::Energy => cost.total_energy_pj(),
            Objective::Cycles => cost.total_cycles() as f64,
            Objective::Weighted {
                energy_weight,
                cycle_weight,
            } => energy_weight * cost.total_energy_pj() + cycle_weight * cost.total_cycles() as f64,
        }
    }

    /// The objective's weight on the energy axis — the multiplier of the
    /// gain-bound perturbation analysis. Zero for [`Objective::Cycles`]
    /// (the score never sees energy); the *signed* weight for
    /// [`Objective::Weighted`] — a negative weight inverts the
    /// perturbation direction the one-sided margin rates assume, so
    /// consumers must disarm (see
    /// [`RunStats::allows_energy_growth`](crate::RunStats::allows_energy_growth)).
    pub(crate) fn energy_weight(&self) -> f64 {
        match self {
            Objective::Cycles => 0.0,
            Objective::Energy => 1.0,
            Objective::Weighted { energy_weight, .. } => *energy_weight,
        }
    }
}

/// One candidate modification of an assignment.
#[derive(Clone, PartialEq, Debug)]
enum Move {
    /// Replace the array's copy chain.
    SetChain(ArrayId, Vec<SelectedCopy>),
    /// Home an internal array in an on-chip layer (clearing its copies).
    Rehome(ArrayId, LayerId),
}

impl Move {
    fn apply(&self, a: &mut Assignment) {
        match self {
            Move::SetChain(array, chain) => {
                a.clear_copies_of(*array);
                for c in chain {
                    a.add_copy(*c);
                }
            }
            Move::Rehome(array, layer) => {
                a.clear_copies_of(*array);
                a.set_home(*array, *layer);
            }
        }
    }

    /// The array this move touches.
    fn array(&self) -> ArrayId {
        match self {
            Move::SetChain(a, _) | Move::Rehome(a, _) => *a,
        }
    }

    /// The `(home, chain)` state this move puts its array in, given the
    /// array's current home.
    fn state(&self, current_home: LayerId) -> (LayerId, &[SelectedCopy]) {
        match self {
            Move::SetChain(_, chain) => (current_home, chain.as_slice()),
            Move::Rehome(_, layer) => (*layer, &[]),
        }
    }
}

/// Enumerates the per-array options (chains over on-chip layers, re-homes).
fn array_options(model: &CostModel<'_>, config: &MhlaConfig, array: ArrayId) -> Vec<Move> {
    let platform = model.platform();
    let onchip: Vec<LayerId> = platform.on_chip_layers().map(|(l, _)| l).collect();
    let max_chain = if config.max_chain == 0 {
        onchip.len()
    } else {
        config.max_chain.min(onchip.len())
    };
    let mut moves = Vec::new();
    // Copy chains: candidate chains × increasing layer sequences.
    for chain in model.reuse().chains(array, max_chain) {
        // Assign chain elements to strictly increasing on-chip layers,
        // innermost ending anywhere; enumerate combinations.
        let k = chain.len();
        if k > onchip.len() {
            continue;
        }
        // Choose k layers out of the on-chip stack (they are already
        // ordered outer→inner).
        let combos = layer_combinations(&onchip, k);
        for layers in combos {
            let sel: Vec<SelectedCopy> = chain
                .iter()
                .zip(&layers)
                .map(|(&candidate, &layer)| SelectedCopy { candidate, layer })
                .collect();
            moves.push(Move::SetChain(array, sel));
        }
    }
    // Re-homing for internal arrays.
    if model.classes()[array.index()] == ArrayClass::Internal {
        for &l in &onchip {
            moves.push(Move::Rehome(array, l));
        }
    }
    moves
}

fn layer_combinations(layers: &[LayerId], k: usize) -> Vec<Vec<LayerId>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn go(
        layers: &[LayerId],
        k: usize,
        start: usize,
        cur: &mut Vec<LayerId>,
        out: &mut Vec<Vec<LayerId>>,
    ) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..layers.len() {
            cur.push(layers[i]);
            go(layers, k, i + 1, cur, out);
            cur.pop();
        }
    }
    go(layers, k, 0, &mut cur, &mut out);
    out
}

/// Result of an assignment search.
#[derive(Clone, PartialEq, Debug)]
pub struct SearchOutcome {
    /// The chosen assignment.
    pub assignment: Assignment,
    /// Its static cost.
    pub cost: CostBreakdown,
    /// Moves applied (greedy) or leaves visited (exhaustive) — diagnostics.
    pub steps: u64,
}

/// The published greedy gain/size steering.
///
/// Starting from the out-of-the-box assignment, repeatedly evaluates every
/// per-array option and applies the one with the best
/// `objective gain / additional on-chip bytes` ratio (pure gains with no
/// size increase rank highest). Stops when no feasible option improves the
/// objective.
pub fn greedy(model: &CostModel<'_>, config: &MhlaConfig) -> SearchOutcome {
    greedy_portfolio(model, config, None)
}

/// [`greedy`] from an arbitrary feasible starting assignment.
pub fn greedy_from(model: &CostModel<'_>, config: &MhlaConfig, start: Assignment) -> SearchOutcome {
    let options = enumerate_options(model, config);
    let mut ws = EvalWorkspace::default();
    ws.prepare_cache(options.len());
    let mut trace = SearchTrace::new(model.platform().layer_count(), false);
    greedy_search(model, config, start, &options, &mut ws, &mut trace)
}

/// Decision-stability record of one greedy run: which layer capacities
/// rejected probes, and how far every decision sits from flipping when the
/// platform's per-access energies are perturbed.
#[derive(Clone, Debug, Default)]
pub(crate) struct SearchTrace {
    /// First-overflow layers of failed capacity probes (bitmask).
    pub(crate) constrained_layers: u64,
    /// Per layer: the run's *margin rate* — the largest write-energy
    /// delta `δw_l` (pJ) the layer alone could absorb without flipping
    /// any decision, were it the only layer growing. Growing scratchpad
    /// capacities moves every contribution's energy by exactly
    /// `Σ_l δw_l · energy_sensitivity[l]`
    /// ([`ArrayContribution::energy_sensitivity`]); each decision — a
    /// rejected move's gain staying `≤ 0`, the chosen move's gain staying
    /// `> 0`, the chosen ratio staying the strict maximum — flips only if
    /// the summed perturbation closes its margin, and it closes at a
    /// known per-layer *risk rate* (the decision's one-sided sensitivity
    /// at that layer). `margin_rates[l]` is the minimum over decisions of
    /// `margin / risk_l`; joint growth of several layers is admitted when
    /// `Σ_l energy_weight · δw_l / margin_rates[l] < 1` (each decision's
    /// total perturbation is then a sub-unit convex combination of its
    /// per-layer allowances). `INFINITY` where no decision is sensitive;
    /// index 0 (the never-resized off-chip layer) is always `INFINITY`.
    pub(crate) margin_rates: Vec<f64>,
    /// Per layer: the smallest byte requirement of any failed capacity
    /// probe that first overflowed there (`u64::MAX` where none did).
    /// A probe's requirement is capacity-independent, so a capacity grown
    /// to *below* this floor still rejects every one of the run's failed
    /// probes at that layer — the bounded-growth extension of the
    /// saturation replay argument
    /// ([`RunStats::allows_growth_to`](crate::RunStats::allows_growth_to)).
    pub(crate) reject_floors: Vec<u64>,
    /// Whether the margin bookkeeping runs at all. The rates are only
    /// consulted under a positive energy weight, so the cycles objective
    /// and throwaway traces (warm portfolio leg, [`greedy_from`]) skip
    /// the per-move sensitivity work on the hot path entirely (the
    /// conservative rates are then all `0.0` — admit nothing beyond
    /// zero-perturbation growth).
    pub(crate) track_margins: bool,
}

impl SearchTrace {
    pub(crate) fn new(layer_count: usize, track_margins: bool) -> Self {
        SearchTrace {
            constrained_layers: 0,
            margin_rates: if track_margins {
                vec![f64::INFINITY; layer_count]
            } else {
                vec![0.0; layer_count]
            },
            reject_floors: vec![u64::MAX; layer_count],
            track_margins,
        }
    }

    /// Resets the trace for reuse as a throwaway (untracked) warm-leg
    /// trace, keeping its buffers. Equivalent to `new(layer_count, false)`.
    pub(crate) fn reset_untracked(&mut self, layer_count: usize) {
        self.constrained_layers = 0;
        self.track_margins = false;
        self.margin_rates.clear();
        self.margin_rates.resize(layer_count, 0.0);
        self.reject_floors.clear();
        self.reject_floors.resize(layer_count, u64::MAX);
    }

    /// Records one failed capacity probe: its first-overflow layer and the
    /// bytes the trial state needed there.
    pub(crate) fn reject(&mut self, layer: LayerId, required: u64) {
        mark_layer(&mut self.constrained_layers, layer);
        if let Some(f) = self.reject_floors.get_mut(layer.index()) {
            *f = (*f).min(required);
        }
    }

    /// Folds one decision into the per-layer rates: `margin ≥ 0` in score
    /// units, `risk(l) ≥ 0` the decision's flip rate per unit `δw_l`, and
    /// `tie_floor` the score magnitude below which a margin is treated as
    /// an exact tie (zero rate at its risky layers). The replayed run
    /// recomputes its scores in f64, so margins within rounding distance
    /// of the score magnitude (~ulps) cannot be trusted to survive —
    /// flooring them to zero keeps the admission rule sound where the
    /// relative safety factor alone would reserve less headroom than the
    /// noise.
    fn fold(&mut self, margin: f64, tie_floor: f64, risk: impl Fn(usize) -> f64) {
        let margin = if margin <= tie_floor { 0.0 } else { margin };
        for l in 1..self.margin_rates.len() {
            let r = risk(l);
            if r > 0.0 {
                self.margin_rates[l] = self.margin_rates[l].min(margin / r);
            }
        }
    }
}

/// How the capacity constraints interacted with one greedy portfolio run —
/// the facts the pruned grid sweep needs to recognize *capacity-saturated*
/// points (see [`explore`](crate::explore)).
#[derive(Clone, PartialEq, Debug)]
pub struct SearchStats {
    /// Bitmask (by layer index) of the layers at which a capacity probe of
    /// the cold (baseline-started) search first overflowed. A layer whose
    /// bit is clear never rejected a move: growing only such layers cannot
    /// change the search's trajectory.
    pub cold_constrained_layers: u64,
    /// Per-layer decision-margin rates of the cold search — the
    /// capacity-monotone *gain bounds* that let the pruned sweep's
    /// saturation rule arm under the energy and weighted objectives (see
    /// [`RunStats`](crate::RunStats) for the admission rule).
    pub cold_margin_rates: Vec<f64>,
    /// Per layer: the smallest byte requirement among the cold search's
    /// failed capacity probes that first overflowed there (`u64::MAX`
    /// where none did). A constrained layer grown to a capacity still
    /// *below* its floor rejects the same probes, so the cold trajectory
    /// replays — see [`RunStats::allows_growth_to`](crate::RunStats::allows_growth_to).
    pub cold_reject_floors: Vec<u64>,
    /// Which external warm seed's leg won the portfolio: `Some(k)` when
    /// the leg started from `seeds[k]` strictly beat the cold result and
    /// replaced it (can happen on deep hierarchies; the pruned grid sweep
    /// runs cold precisely so its results stay standalone-identical),
    /// `None` when the cold (baseline-started) leg was kept.
    pub winning_seed: Option<usize>,
    /// Greedy searches executed: the cold leg plus one per *distinct*
    /// warm seed (seeds equal to the cold fixed point or to an earlier
    /// seed provably return an already-known result and are skipped).
    pub legs: usize,
}

impl SearchStats {
    /// Whether a warm-started leg overrode the cold result.
    pub fn warm_overrode(&self) -> bool {
        self.winning_seed.is_some()
    }
}

/// Greedy search portfolio: always runs the cold (baseline-started)
/// search; when `warm` is given, additionally continues from that
/// assignment and returns whichever result scores better (ties prefer the
/// cold result, so a warm-started sweep point is bit-for-bit identical to
/// a cold one unless the warm start strictly improves on it).
///
/// The capacity sweep passes the previous point's assignment as `warm`:
/// at a larger capacity every previously selected move stays feasible, so
/// the warm search starts near a fixed point and converges in a step or
/// two, while the per-move caches below make both searches cheap.
pub fn greedy_portfolio(
    model: &CostModel<'_>,
    config: &MhlaConfig,
    warm: Option<&Assignment>,
) -> SearchOutcome {
    let moves = enumerate_moves(model, config);
    greedy_portfolio_with(model, config, warm, &moves)
}

/// The enumerated candidate-move space of one (program, reuse, config).
///
/// Depends on the program structure, the reuse analysis and the *shape* of
/// the platform (which layers are on-chip) — not on layer capacities — so
/// a capacity sweep enumerates it once (usually inside an
/// [`ExplorationContext`](crate::ExplorationContext)) and shares it across
/// every point.
#[derive(Debug)]
pub struct MoveSet {
    moves: Vec<Move>,
}

impl MoveSet {
    /// Number of candidate moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the move space is empty.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Enumerates the candidate-move space (see [`MoveSet`]).
pub fn enumerate_moves(model: &CostModel<'_>, config: &MhlaConfig) -> MoveSet {
    MoveSet {
        moves: enumerate_options(model, config),
    }
}

/// [`greedy_portfolio`] over a pre-enumerated move space.
pub fn greedy_portfolio_with(
    model: &CostModel<'_>,
    config: &MhlaConfig,
    warm: Option<&Assignment>,
    moves: &MoveSet,
) -> SearchOutcome {
    greedy_portfolio_stats(model, config, warm, moves).0
}

/// [`greedy_portfolio_with`], additionally reporting how the capacity
/// constraints bound the run (see [`SearchStats`]). The outcome is
/// byte-for-byte the one `greedy_portfolio_with` returns.
pub fn greedy_portfolio_stats(
    model: &CostModel<'_>,
    config: &MhlaConfig,
    warm: Option<&Assignment>,
    moves: &MoveSet,
) -> (SearchOutcome, SearchStats) {
    match warm {
        Some(w) => greedy_portfolio_seeded(model, config, &[w], moves),
        None => greedy_portfolio_seeded(model, config, &[], moves),
    }
}

/// The greedy portfolio over an arbitrary list of external warm seeds —
/// the search primitive of the improving sweep mode
/// ([`SearchMode::Improving`](crate::explore::SearchMode)).
///
/// The cold (baseline-started) leg always runs first; each *distinct*
/// seed then gets its own leg continuing from that assignment (seeds must
/// be feasible — the sweeps pass committed results of componentwise
/// smaller capacity points, which stay feasible as layers grow). The
/// returned outcome is the best-scoring leg, with ties resolved toward
/// the cold leg first and then toward the earliest seed, so the result is
/// deterministic and *provably scores no worse than the cold search* —
/// the dominance guarantee the improving sweeps build on.
/// [`SearchStats::winning_seed`] reports which seed (if any) won.
///
/// With an empty or all-duplicate seed list this is exactly the cold
/// search (one leg), and with one seed it is exactly the classic warm
/// portfolio of [`greedy_portfolio_stats`].
pub fn greedy_portfolio_seeded(
    model: &CostModel<'_>,
    config: &MhlaConfig,
    seeds: &[&Assignment],
    moves: &MoveSet,
) -> (SearchOutcome, SearchStats) {
    greedy_portfolio_seeded_in(model, config, seeds, moves, &mut EvalWorkspace::default())
}

/// [`greedy_portfolio_seeded`] drawing every scratch buffer from `ws` —
/// the allocation-free per-point search of the sweep engines. A fresh
/// workspace reproduces the allocating path exactly; a warm (reused)
/// workspace is bit-identical because every buffer is fully reset or
/// invalidated before use (the trial cache by `home = None`, since the
/// platform's capacities — and with them every cached price — may have
/// changed since the previous point).
pub fn greedy_portfolio_seeded_in(
    model: &CostModel<'_>,
    config: &MhlaConfig,
    seeds: &[&Assignment],
    moves: &MoveSet,
    ws: &mut EvalWorkspace,
) -> (SearchOutcome, SearchStats) {
    let options = &moves.moves;
    let layer_count = model.platform().layer_count();
    ws.prepare_cache(options.len());
    // Margin rates are only consulted under a positive energy weight —
    // skip the sensitivity bookkeeping otherwise (the cycles objective,
    // and the common sweep paths that never read the margins). The cold
    // trace is built fresh: its vectors escape into `SearchStats`.
    let mut trace = SearchTrace::new(layer_count, config.objective.energy_weight() > 0.0);
    let baseline = ws.start_baseline(model.program().array_count(), config.policy);
    let cold = greedy_search(model, config, baseline, options, ws, &mut trace);
    let cold_score = config.objective.score(&cold.cost);
    let mut stats = SearchStats {
        cold_constrained_layers: trace.constrained_layers,
        cold_margin_rates: trace.margin_rates,
        cold_reject_floors: trace.reject_floors,
        winning_seed: None,
        legs: 1,
    };
    // A greedy result is a fixed point: searching from it goes nowhere.
    // Seeds coinciding with the cold solution (the common case in a
    // capacity sweep — adjacent points often share the optimum) or with
    // an already-searched seed provably return a known result unchanged,
    // so they are skipped without a leg.
    ws.ran_idx.clear();
    let mut best_warm: Option<(usize, SearchOutcome, f64)> = None;
    for (k, &seed) in seeds.iter().enumerate() {
        if *seed == cold.assignment || ws.ran_idx.iter().any(|&j| seeds[j] == seed) {
            continue;
        }
        ws.ran_idx.push(k);
        let start = ws.start_from_seed(seed);
        // Warm legs run under the pooled untracked trace (taken out of
        // the workspace for the call; the cold trace above is the only
        // one whose data outlives the search).
        let mut warm_trace = std::mem::take(&mut ws.warm_trace);
        warm_trace.reset_untracked(layer_count);
        let warmed = greedy_search(model, config, start, options, ws, &mut warm_trace);
        ws.warm_trace = warm_trace;
        stats.legs += 1;
        let score = config.objective.score(&warmed.cost);
        // Strict `<` on both contests: ties keep the cold result (the
        // bit-identical-to-standalone guarantee of the cold sweeps) and,
        // among warm legs, the earliest seed (determinism).
        if score < cold_score && best_warm.as_ref().is_none_or(|(_, _, s)| score < *s) {
            if let Some(loser) = best_warm.replace((k, warmed, score)) {
                ws.recycle_outcome(loser.1);
            }
        } else {
            ws.recycle_outcome(warmed);
        }
    }
    match best_warm {
        Some((k, warmed, _)) => {
            stats.winning_seed = Some(k);
            ws.recycle_outcome(cold);
            (warmed, stats)
        }
        None => (cold, stats),
    }
}

/// The option space depends only on the model and config — enumerated
/// once per search (or once per sweep point for the portfolio), not once
/// per greedy step.
fn enumerate_options(model: &CostModel<'_>, config: &MhlaConfig) -> Vec<Move> {
    model
        .program()
        .arrays()
        .flat_map(|(aid, _)| array_options(model, config, aid))
        .collect()
}

/// The "free win" ratio scale: a move costing no extra on-chip bytes is
/// ranked by `gain * FREE_WIN_SCALE`, a sized move by `gain / extra` — one
/// formula, so a ratio's sensitivity to gain perturbations is its scale
/// factor (used by the decision-margin bookkeeping below).
const FREE_WIN_SCALE: f64 = 1e12;

/// One greedy run over a fixed option list with a per-move trial cache.
///
/// Candidate moves are priced through [`IncrementalCost`]: re-evaluating a
/// move costs `O(arrays)` additions plus an `O(residents)` capacity probe —
/// the full [`CostModel::evaluate`] is never called inside the loop, and
/// neither is the assignment cloned per candidate.
///
/// `trace` accumulates the run's [`SearchTrace`]:
///
/// * the first-overflow layer of every failed capacity probe (bitmask) —
///   the signal the pruned grid sweep uses to recognize which layers
///   actually bound the search; and
/// * the per-layer *decision-margin rates*. Every decision of the loop is
///   a comparison of f64 scores: a rejected move's gain staying `<= 0`,
///   the chosen move's gain staying `> 0`, and the chosen move's ratio
///   staying the strict maximum. When scratchpad capacities grow, each
///   contribution's energy moves by exactly `Σ_l δw_l · sensitivity[l]`,
///   so each decision closes its margin at a per-layer *risk rate* — the
///   one-sided (current − trial) sensitivity difference at that layer,
///   scaled for ratio contests. [`SearchTrace::fold`] turns every
///   decision into per-layer allowances. Exemptions, all exact: a layer
///   at which the decision's risky-side sensitivity is zero (the gain
///   cannot move toward the flip there — this subsumes trial states
///   identical to the committed state), and ratio contests between moves
///   with bitwise-equal sensitivity differences and equal scales (their
///   gap is invariant under *any* capacity growth — the
///   symmetric-twin-array case, where margins would otherwise read zero).
fn greedy_search(
    model: &CostModel<'_>,
    config: &MhlaConfig,
    start: Assignment,
    options: &[Move],
    ws: &mut EvalWorkspace,
    trace: &mut SearchTrace,
) -> SearchOutcome {
    // Field-level borrows: the trial cache, the contender buffers and the
    // incremental evaluator's pool live side by side in the workspace.
    // `cache` must already be sized for `options` (`prepare_cache`).
    let EvalWorkspace {
        cache,
        contenders,
        svec_buf,
        scratch,
        streams,
        pool,
        ..
    } = ws;
    let mut inc = IncrementalCost::new_in(model, start, pool);
    let mut current_score = config.objective.score(inc.cost());
    let mut current_size = inc.onchip_required();
    let mut steps = 0u64;
    let layer_count = model.platform().layer_count();
    // Improving, feasible moves of the current step: (ratio, gain,
    // ratio-scale) plus, in `svec_buf`, each contender's per-layer
    // sensitivity difference (a flat reusable buffer, `layer_count`
    // entries per contender) — the contest the chosen move must win with
    // margin.

    loop {
        let mut best: Option<(f64, usize, u64)> = None;
        let mut best_contender = 0usize;
        contenders.clear();
        svec_buf.clear();
        // Margins within f64 rounding distance of the score scale are
        // ties (see `SearchTrace::fold`).
        let tie_floor = current_score.abs().max(1.0) * 1e-9;
        for (idx, mv) in options.iter().enumerate() {
            let array = mv.array();
            let (home, chain) = mv.state(inc.assignment().home(array));
            if cache[idx].home != Some(home) {
                let slot = &mut cache[idx];
                slot.home = Some(home);
                model.array_contribution_into(
                    array,
                    home,
                    chain,
                    inc.assignment().policy(),
                    streams,
                    &mut slot.contrib,
                );
                model.array_residents_into(array, home, chain, &mut slot.residents);
            }
            let entry = &cache[idx];
            // Gain first, capacity second: both are pure filters, so the
            // order cannot change the chosen move, and the cheap gain test
            // rejects most moves without paying for a capacity probe.
            inc.evaluate_with_contribution_into(array, &entry.contrib, scratch);
            let gain = current_score - config.objective.score(scratch);
            if gain <= 0.0 {
                // The rejection must survive growth: its gain rises at
                // layer `l` at rate `(cur − trial) sensitivity⁺`. Layers
                // where the difference is `≤ 0` are risk-free (this
                // covers trial states identical to the committed one).
                if trace.track_margins {
                    let cur = &inc.contribution(array).energy_sensitivity;
                    let tr = &entry.contrib.energy_sensitivity;
                    trace.fold(-gain, tie_floor, |l| (cur[l] - tr[l]).max(0.0));
                }
                continue;
            }
            let size = match inc.probe_required(array, &entry.residents) {
                Ok(size) => size,
                Err((layer, required)) => {
                    trace.reject(layer, required);
                    continue; // some on-chip layer overflows
                }
            };
            let extra = size.saturating_sub(current_size);
            // Ratio steering: free wins (no extra bytes) dominate any
            // sized move but are still ordered among themselves by gain.
            let (ratio, scale) = if extra == 0 {
                (gain * FREE_WIN_SCALE, FREE_WIN_SCALE)
            } else {
                (gain / extra as f64, 1.0 / extra as f64)
            };
            if trace.track_margins {
                let cur = inc.contribution(array);
                svec_buf.extend(
                    cur.energy_sensitivity
                        .iter()
                        .zip(&entry.contrib.energy_sensitivity)
                        .map(|(c, t)| c - t),
                );
                contenders.push((ratio, gain, scale));
            }
            if best.as_ref().is_none_or(|(r, ..)| ratio > *r) {
                best = Some((ratio, idx, size));
                best_contender = contenders.len().saturating_sub(1);
            }
        }
        match best {
            Some((ratio_c, idx, size)) => {
                // Margins of the selection: the chosen gain stays
                // positive (it falls at layer `l` at rate
                // `(−svec_c[l])⁺`), and the chosen ratio stays strictly
                // above every other contender's (the gap closes at the
                // chosen side's fall rate plus the other side's rise
                // rate, each times its ratio scale) — unless the two
                // moves' sensitivity differences and scales are
                // identical, in which case the gap is invariant.
                if trace.track_margins {
                    let (_, gain_c, scale_c) = contenders[best_contender];
                    let svec = |i: usize| &svec_buf[i * layer_count..(i + 1) * layer_count];
                    let svec_c = svec(best_contender);
                    trace.fold(gain_c, tie_floor, |l| (-svec_c[l]).max(0.0));
                    for (i, &(ratio_i, _, scale_i)) in contenders.iter().enumerate() {
                        if i == best_contender {
                            continue;
                        }
                        let svec_i = svec(i);
                        if scale_i == scale_c && svec_i == svec_c {
                            continue; // gap invariant under any growth
                        }
                        trace.fold(ratio_c - ratio_i, tie_floor, |l| {
                            scale_c * (-svec_c[l]).max(0.0) + scale_i * (svec_i[l]).max(0.0)
                        });
                    }
                }
                let mv = &options[idx];
                let array = mv.array();
                let (home, chain) = mv.state(inc.assignment().home(array));
                inc.commit_array_state(array, home, chain);
                current_score = config.objective.score(inc.cost());
                current_size = size;
                steps += 1;
            }
            None => break,
        }
    }
    let (assignment, cost) = inc.into_parts(pool);
    SearchOutcome {
        assignment,
        cost,
        steps,
    }
}

/// The pre-incremental greedy: clones the assignment and runs the full
/// [`CostModel::evaluate`] + capacity check for every candidate move.
///
/// Kept as the *oracle* implementation: [`greedy`] must produce the same
/// outcome (see the equivalence tests), and the `tradeoff` bench uses this
/// path to measure how much the incremental evaluator buys.
pub fn greedy_oracle(model: &CostModel<'_>, config: &MhlaConfig) -> SearchOutcome {
    let no_buffers = HashMap::new();
    let mut current = Assignment::baseline(model.program().array_count(), config.policy);
    let mut current_cost = model.evaluate(&current);
    let mut current_size = onchip_required_oracle(model, &current, &no_buffers);
    let mut steps = 0u64;

    loop {
        let mut best: Option<(f64, Move, CostBreakdown, u64)> = None;
        for (aid, _) in model.program().arrays() {
            for mv in array_options(model, config, aid) {
                let mut trial = current.clone();
                mv.apply(&mut trial);
                if model.check_capacity(&trial, &no_buffers).is_err() {
                    continue;
                }
                let cost = model.evaluate(&trial);
                let gain = config.objective.score(&current_cost) - config.objective.score(&cost);
                if gain <= 0.0 {
                    continue;
                }
                let size = onchip_required_oracle(model, &trial, &no_buffers);
                let extra = size.saturating_sub(current_size);
                let ratio = if extra == 0 {
                    gain * 1e12
                } else {
                    gain / extra as f64
                };
                if best.as_ref().is_none_or(|(r, ..)| ratio > *r) {
                    best = Some((ratio, mv, cost, size));
                }
            }
        }
        match best {
            Some((_, mv, cost, size)) => {
                mv.apply(&mut current);
                current_cost = cost;
                current_size = size;
                steps += 1;
            }
            None => break,
        }
    }
    SearchOutcome {
        assignment: current,
        cost: current_cost,
        steps,
    }
}

fn onchip_required_oracle(
    model: &CostModel<'_>,
    a: &Assignment,
    buffers: &HashMap<mhla_reuse::CandidateId, u32>,
) -> u64 {
    model
        .layer_usage(a, buffers)
        .iter()
        .skip(1)
        .map(|u| u.required)
        .sum()
}

/// Exhaustive branch-and-bound over per-array options.
///
/// Exact (up to the option space, which both searches share) but
/// exponential; intended for small instances and for validating the
/// greedy. Visits at most `node_limit` leaves, then returns the incumbent.
pub fn exhaustive(model: &CostModel<'_>, config: &MhlaConfig, node_limit: u64) -> SearchOutcome {
    let no_buffers = HashMap::new();
    let arrays: Vec<ArrayId> = model.program().arrays().map(|(a, _)| a).collect();
    let options: Vec<Vec<Move>> = arrays
        .iter()
        .map(|&a| {
            // First option: leave the array alone (empty chain, home as-is).
            let mut v = vec![Move::SetChain(a, Vec::new())];
            v.extend(array_options(model, config, a));
            v
        })
        .collect();

    let baseline = Assignment::baseline(model.program().array_count(), config.policy);
    let base_cost = model.evaluate(&baseline);
    let mut best = SearchOutcome {
        assignment: baseline.clone(),
        cost: base_cost,
        steps: 0,
    };
    let mut best_score = config.objective.score(&best.cost);
    let mut visited = 0u64;

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        model: &CostModel<'_>,
        config: &MhlaConfig,
        options: &[Vec<Move>],
        depth: usize,
        current: &mut Assignment,
        no_buffers: &HashMap<mhla_reuse::CandidateId, u32>,
        best: &mut SearchOutcome,
        best_score: &mut f64,
        visited: &mut u64,
        node_limit: u64,
    ) {
        if *visited >= node_limit {
            return;
        }
        if depth == options.len() {
            *visited += 1;
            if model.check_capacity(current, no_buffers).is_err() {
                return;
            }
            let cost = model.evaluate(current);
            let score = config.objective.score(&cost);
            if score < *best_score {
                *best_score = score;
                *best = SearchOutcome {
                    assignment: current.clone(),
                    cost,
                    steps: *visited,
                };
            }
            return;
        }
        for mv in &options[depth] {
            let saved = current.clone();
            mv.apply(current);
            // Prune: partial assignments that already blow a capacity
            // cannot be fixed by later arrays (options only add residents).
            if model.check_capacity(current, no_buffers).is_ok() {
                dfs(
                    model,
                    config,
                    options,
                    depth + 1,
                    current,
                    no_buffers,
                    best,
                    best_score,
                    visited,
                    node_limit,
                );
            }
            *current = saved;
        }
    }

    let mut current = baseline;
    dfs(
        model,
        config,
        &options,
        0,
        &mut current,
        &no_buffers,
        &mut best,
        &mut best_score,
        &mut visited,
        node_limit,
    );
    best.steps = visited;
    best
}

/// Runs the configured search strategy.
pub fn search(model: &CostModel<'_>, config: &MhlaConfig) -> SearchOutcome {
    match config.strategy {
        crate::types::SearchStrategy::Greedy => greedy(model, config),
        crate::types::SearchStrategy::Exhaustive { node_limit } => {
            exhaustive(model, config, node_limit)
        }
    }
}

/// The out-of-the-box assignment and its cost (the paper's 100% bar).
pub fn baseline(model: &CostModel<'_>, policy: TransferPolicy) -> SearchOutcome {
    let a = Assignment::baseline(model.program().array_count(), policy);
    let cost = model.evaluate(&a);
    SearchOutcome {
        assignment: a,
        cost,
        steps: 0,
    }
}

/// The *direct placement* baseline: what a programmer gets without the MHLA
/// tool on a platform that nevertheless has on-chip SRAM — the toolchain
/// places data sections by static fit, with no copies, no lifetime sharing
/// and no prefetching.
///
/// Arrays eligible for on-chip linkage are the *internal temporaries*
/// (compiler-managed `.bss`/stack data, which toolchains of the era did
/// link into on-chip SRAM). Inputs, outputs and constant tables stay
/// off-chip — `.rodata` lived in flash/SDRAM, and promoting it on-chip is
/// precisely the manual tuning MHLA automates. Placement is greedy by
/// access density (accesses per byte), filling the closest layer first,
/// and capacity is checked by *sum* of sizes — out-of-the-box code does
/// not share storage between lifetimes.
pub fn direct_placement(model: &CostModel<'_>, policy: TransferPolicy) -> SearchOutcome {
    direct_placement_stats(model, policy).0
}

/// [`direct_placement`], additionally reporting (as a bitmask by layer
/// index) the layers whose remaining capacity *rejected* an eligible
/// array during placement, plus the per-layer *rejection floors*: the
/// smallest total requirement (bytes already placed + rejected array) of
/// any rejection at each layer, `u64::MAX` where none occurred. A layer
/// whose bit is clear never turned an array away: growing only such
/// layers reproduces the identical placement — one leg of the pruned grid
/// sweep's saturation argument; a constrained layer grown to a capacity
/// still below its floor rejects the same arrays, so the placement also
/// replays (the used bytes at each rejection replay by induction).
/// Arrays that fit nowhere mark every on-chip layer.
pub fn direct_placement_stats(
    model: &CostModel<'_>,
    policy: TransferPolicy,
) -> (SearchOutcome, u64, Vec<u64>) {
    direct_placement_stats_in(model, policy, &mut EvalWorkspace::default())
}

/// [`direct_placement_stats`] pricing the placement through the
/// workspace's pooled scratch (bit-identical; the placement logic itself
/// is untouched).
pub(crate) fn direct_placement_stats_in(
    model: &CostModel<'_>,
    policy: TransferPolicy,
    ws: &mut EvalWorkspace,
) -> (SearchOutcome, u64, Vec<u64>) {
    let program = model.program();
    let info = program.info();
    let mut a = Assignment::baseline(program.array_count(), policy);

    // Eligible arrays, densest first.
    let mut eligible: Vec<(ArrayId, u64, f64)> = program
        .arrays()
        .filter_map(|(aid, decl)| {
            let counts = info.access_counts(aid);
            let internal = model.classes()[aid.index()] == ArrayClass::Internal;
            if !internal || counts.total() == 0 {
                return None;
            }
            Some((
                aid,
                decl.bytes(),
                counts.total() as f64 / decl.bytes() as f64,
            ))
        })
        .collect();
    eligible.sort_by(|x, y| y.2.partial_cmp(&x.2).unwrap_or(std::cmp::Ordering::Equal));

    // Fill layers closest-first by remaining capacity (tracking the bytes
    // already placed per slot for the rejection floors).
    let mut remaining: Vec<(LayerId, u64, u64)> = model
        .platform()
        .on_chip_layers()
        .map(|(l, layer)| (l, layer.capacity.unwrap_or(u64::MAX), 0u64))
        .collect();
    remaining.reverse(); // closest first
    let mut constrained_layers = 0u64;
    let mut reject_floors = vec![u64::MAX; model.platform().layer_count()];
    for (aid, bytes, _) in eligible {
        for slot in remaining.iter_mut() {
            if bytes <= slot.1 {
                a.set_home(aid, slot.0);
                slot.1 -= bytes;
                slot.2 += bytes;
                break;
            }
            mark_layer(&mut constrained_layers, slot.0);
            if let Some(f) = reject_floors.get_mut(slot.0.index()) {
                *f = (*f).min(slot.2.saturating_add(bytes));
            }
        }
    }
    let cost = model.evaluate_in(&a, &mut ws.pool);
    (
        SearchOutcome {
            assignment: a,
            cost,
            steps: 0,
        },
        constrained_layers,
        reject_floors,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_arrays;
    use mhla_hierarchy::Platform;
    use mhla_ir::{ElemType, Program, ProgramBuilder};
    use mhla_reuse::ReuseAnalysis;

    fn run(
        p: &Program,
        pf: &Platform,
        config: &MhlaConfig,
    ) -> (SearchOutcome, SearchOutcome, CostBreakdown) {
        let reuse = ReuseAnalysis::analyze(p);
        let classes = classify_arrays(p, &config.class_overrides);
        let model = CostModel::new(p, pf, &reuse, classes);
        let g = greedy(&model, config);
        let e = exhaustive(&model, config, 1_000_000);
        let b = model.evaluate(&Assignment::baseline(p.array_count(), config.policy));
        (g, e, b)
    }

    /// Table scanned repeatedly — the canonical staging win.
    fn scan_program() -> Program {
        let mut b = ProgramBuilder::new("scan");
        let tab = b.array("tab", &[256], ElemType::U8);
        let lr = b.begin_loop("rep", 0, 64, 1);
        let li = b.begin_loop("i", 0, 256, 1);
        let iv = b.var(li);
        b.stmt("s").read(tab, vec![iv]).compute_cycles(1).finish();
        b.end_loop();
        b.end_loop();
        let _ = lr;
        b.finish()
    }

    #[test]
    fn greedy_stages_the_scanned_table() {
        let p = scan_program();
        let pf = Platform::embedded_default(1024);
        let (g, _, base) = run(&p, &pf, &MhlaConfig::default());
        assert_eq!(g.assignment.copies().len(), 1);
        assert!(g.cost.total_cycles() < base.total_cycles() / 2);
        assert!(g.cost.total_energy_pj() < base.total_energy_pj() / 2.0);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_instances() {
        let p = scan_program();
        let pf = Platform::embedded_default(1024);
        for objective in [Objective::Cycles, Objective::Energy] {
            let config = MhlaConfig {
                objective,
                ..MhlaConfig::default()
            };
            let (g, e, _) = run(&p, &pf, &config);
            assert_eq!(
                objective.score(&g.cost),
                objective.score(&e.cost),
                "greedy should be optimal here"
            );
        }
    }

    #[test]
    fn nothing_is_staged_when_scratchpad_is_too_small() {
        let p = scan_program();
        let pf = Platform::embedded_default(16); // 16 B: nothing useful fits
        let (g, e, base) = run(&p, &pf, &MhlaConfig::default());
        // The only feasible candidates are tiny inner-loop footprints with
        // no gain; greedy must not regress below baseline.
        assert!(g.cost.total_cycles() <= base.total_cycles());
        assert!(e.cost.total_cycles() <= base.total_cycles());
    }

    #[test]
    fn capacity_constrains_the_choice() {
        // Two tables; only one fits.
        let mut b = ProgramBuilder::new("two");
        let hot = b.array("hot", &[256], ElemType::U8);
        let cold = b.array("cold", &[256], ElemType::U8);
        let lr = b.begin_loop("rep", 0, 64, 1);
        let li = b.begin_loop("i", 0, 256, 1);
        let iv = b.var(li);
        b.stmt("h").read(hot, vec![iv.clone()]).finish();
        b.end_loop();
        let lj = b.begin_loop("j", 0, 16, 1);
        let jv = b.var(lj);
        b.stmt("c").read(cold, vec![jv * 16]).finish();
        b.end_loop();
        b.end_loop();
        let _ = (lr, li, lj);
        let p = b.finish();
        let pf = Platform::embedded_default(256);
        let (g, e, _) = run(&p, &pf, &MhlaConfig::default());
        // The hot table (64×256 accesses) must win the single slot.
        for outcome in [&g, &e] {
            let staged: Vec<_> = outcome
                .assignment
                .copies()
                .iter()
                .map(|c| c.candidate.array)
                .collect();
            assert!(staged.contains(&hot), "hot table staged: {staged:?}");
            assert!(!staged.contains(&cold), "cold table must not fit");
        }
    }

    #[test]
    fn internal_temporary_gets_rehomed() {
        // tmp produced then consumed, fits on-chip: homing beats copying.
        let mut b = ProgramBuilder::new("p");
        let tmp = b.array("tmp", &[128], ElemType::U8);
        b.loop_scope("i", 0, 128, 1, |b, li| {
            let i = b.var(li);
            b.stmt("w").write(tmp, vec![i]).finish();
        });
        b.loop_scope("rep", 0, 32, 1, |b, _| {
            b.loop_scope("j", 0, 128, 1, |b, lj| {
                let j = b.var(lj);
                b.stmt("r").read(tmp, vec![j]).finish();
            });
        });
        let p = b.finish();
        let pf = Platform::embedded_default(1024);
        let (g, _, base) = run(&p, &pf, &MhlaConfig::default());
        assert_eq!(
            g.assignment.home(tmp),
            LayerId(1),
            "temporary homed on-chip"
        );
        assert!(g.assignment.copies().is_empty());
        assert_eq!(g.cost.transfer_count, 0, "no transfers at all");
        assert!(g.cost.total_cycles() < base.total_cycles());
    }

    #[test]
    fn greedy_never_worsens_the_baseline() {
        let p = scan_program();
        for cap in [32u64, 128, 512, 4096, 65536] {
            let pf = Platform::embedded_default(cap);
            let (g, _, base) = run(&p, &pf, &MhlaConfig::default());
            assert!(
                g.cost.total_cycles() <= base.total_cycles(),
                "regression at cap {cap}"
            );
        }
    }

    #[test]
    fn weighted_objective_interpolates() {
        let p = scan_program();
        let pf = Platform::embedded_default(1024);
        let config = MhlaConfig {
            objective: Objective::Weighted {
                energy_weight: 0.5,
                cycle_weight: 0.5,
            },
            ..MhlaConfig::default()
        };
        let (g, _, base) = run(&p, &pf, &config);
        assert!(config.objective.score(&g.cost) < config.objective.score(&base));
    }
}
