//! # mhla-core — Memory Hierarchical Layer Assignment with Time Extensions
//!
//! This crate implements the technique of the DATE 2005 paper *"A Memory
//! Hierarchical Layer Assigning and Prefetching Technique to Overcome the
//! Memory Performance/Energy Bottleneck"* (Dasygenis, Brockmeyer, Durinck,
//! Catthoor, Soudris, Thanailakis), on top of the MHLA formulation of
//! DATE 2003 (Brockmeyer et al., reference \[1\] of the paper).
//!
//! The exploration flow has the paper's two steps:
//!
//! 1. **Selection and assignment** ([`assign`]): decide, per array, where it
//!    is homed and which data-reuse copy candidates are staged into which
//!    on-chip layer, subject to layer capacities *after in-place
//!    optimization*, optimizing energy, cycles or a weighted mix
//!    ([`Objective`]). Both the published greedy gain/size steering and an
//!    exhaustive branch-and-bound (for small instances / validation) are
//!    provided.
//! 2. **Time extensions** ([`te`]): the paper's contribution — Figure 1's
//!    greedy algorithm that schedules each copy's DMA block transfers
//!    earlier ("prefetching"), hiding transfer time behind CPU processing
//!    of preceding loops, subject to the on-chip size constraint (extended
//!    copy lifetimes cost buffers) and data dependencies. Platforms without
//!    a memory transfer engine get no extensions, exactly as the paper
//!    notes.
//!
//! [`explore`] sweeps on-chip capacities and produces the Pareto trade-off
//! points the paper's Figures 2 and 3 are drawn from; [`CostModel`]
//! provides the static cycle/energy estimates (the cycle-accurate
//! counterpart lives in `mhla-sim`). [`multitask`] implements the paper's
//! stated future work: statically partitioning the scratchpad among
//! several tasks, each running the full flow in its partition.
//!
//! # Example
//!
//! ```
//! use mhla_hierarchy::Platform;
//! use mhla_ir::{ElemType, ProgramBuilder};
//! use mhla_core::{MhlaConfig, Mhla};
//!
//! // A table scanned 64 times: staging it on-chip is a clear win.
//! let mut b = ProgramBuilder::new("scan");
//! let tab = b.array("tab", &[256], ElemType::U8);
//! let lr = b.begin_loop("rep", 0, 64, 1);
//! let li = b.begin_loop("i", 0, 256, 1);
//! let iv = b.var(li);
//! b.stmt("s").read(tab, vec![iv]).compute_cycles(2).finish();
//! b.end_loop();
//! b.end_loop();
//! let program = b.finish();
//!
//! let platform = Platform::embedded_default(1024);
//! let result = Mhla::new(&program, &platform, MhlaConfig::default()).run();
//! assert!(result.assignment.copies().len() == 1, "the table is staged");
//! assert!(result.te.applicable, "platform has a DMA engine");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The engine boundary is fallible: user-reachable paths return typed
// [`MhlaError`]s instead of panicking. Surviving `expect`s are internal
// invariants, each carrying an explicit `#[allow]` + justification.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod assign;
pub mod context;
pub mod cost;
pub mod error;
pub mod explore;
pub mod fingerprint;
pub mod multitask;
pub mod pareto;
pub mod report;
pub mod te;
pub mod workspace;

mod classify;
mod driver;
mod types;

pub use classify::{classify_arrays, ArrayClass};
pub use context::{ExplorationContext, ProgramFacts, SeedCache};
pub use cost::{
    ArrayContribution, CostBreakdown, CostFloor, CostModel, IncPool, IncrementalCost, LayerUsage,
};
pub use driver::{Mhla, MhlaResult, RunStats};
pub use error::{
    validate_config, validate_objective, validate_platform, validate_program, MhlaError,
};
pub use types::{
    Assignment, AssignmentError, MhlaConfig, Objective, SearchStrategy, SelectedCopy,
    TransferPolicy,
};
pub use workspace::EvalWorkspace;
