//! Typed errors and ingress validation — the fallible boundary around
//! the whole exploration engine.
//!
//! Every `try_` entry point ([`Mhla::try_new`](crate::Mhla::try_new), the
//! `try_sweep*` family of [`explore`](crate::explore)) validates its
//! inputs up front — the [`Program`] (via [`Program::validate`]), the
//! [`Platform`] (capacities, layer ordering) and the
//! [`Objective`]/[`MhlaConfig`] — and returns a typed [`MhlaError`]
//! instead of panicking, so programs arriving from outside the process
//! (files, RPCs, fuzzers) are rejected with a diagnosis rather than a
//! crash. The infallible API stays as thin wrappers over the `try_`
//! variants; on inputs it accepts today it behaves bit-identically.

use std::error::Error;
use std::fmt;

use mhla_hierarchy::{LayerKind, Platform};
use mhla_ir::{Program, ValidateError};

use crate::explore::{GridAxis, StopCause};
use crate::types::{MhlaConfig, Objective};

/// Everything that can go wrong at the engine boundary.
///
/// The first four variants are *ingress* rejections (the input can never
/// be processed); [`BudgetExhausted`](MhlaError::BudgetExhausted) and
/// [`Cancelled`](MhlaError::Cancelled) are *interruption* reports — the
/// sweeps themselves return `Ok` with a partial result
/// ([`SweepStatus::Stopped`](crate::explore::SweepStatus)), and these
/// variants surface through the strict
/// [`require_complete`](crate::explore::GridSweepRun::require_complete)
/// accessors for callers that need an all-or-nothing answer.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum MhlaError {
    /// The program failed structural validation ([`Program::validate`]).
    InvalidProgram(ValidateError),
    /// The platform or run configuration is unusable (a zero-capacity
    /// on-chip layer, a class override naming a nonexistent array, a
    /// malformed tuning variable, …).
    InvalidOptions {
        /// Human-readable diagnosis.
        what: String,
    },
    /// The objective is degenerate: a NaN or infinite weight, or every
    /// weight zero (nothing to minimize). Negative weights are *legal* —
    /// the exploration layer supports them (its floor rules disarm).
    InvalidObjective {
        /// Human-readable diagnosis.
        what: String,
    },
    /// A sweep axis names an impossible grid point: the off-chip layer, a
    /// layer the platform does not have, or a zero capacity.
    InfeasiblePoint {
        /// Human-readable diagnosis.
        what: String,
    },
    /// An exploration budget ([`ExploreBudget`](crate::explore::ExploreBudget))
    /// ran out before the sweep covered the grid. The partial result is
    /// still a certified frontier over its committed lex prefix.
    BudgetExhausted {
        /// What ran out ([`StopCause::MaxEvals`] or
        /// [`StopCause::Deadline`]).
        cause: StopCause,
        /// Grid points committed before the stop.
        committed: usize,
        /// Points of the full Cartesian product.
        total: usize,
    },
    /// The sweep's cancellation flag was raised.
    Cancelled {
        /// Grid points committed before the stop.
        committed: usize,
        /// Points of the full Cartesian product.
        total: usize,
    },
}

impl fmt::Display for MhlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MhlaError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            MhlaError::InvalidOptions { what } => write!(f, "invalid options: {what}"),
            MhlaError::InvalidObjective { what } => write!(f, "invalid objective: {what}"),
            MhlaError::InfeasiblePoint { what } => write!(f, "infeasible point: {what}"),
            MhlaError::BudgetExhausted {
                cause,
                committed,
                total,
            } => write!(
                f,
                "exploration budget exhausted ({cause:?}) after {committed} of {total} points"
            ),
            MhlaError::Cancelled { committed, total } => {
                write!(
                    f,
                    "exploration cancelled after {committed} of {total} points"
                )
            }
        }
    }
}

impl Error for MhlaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MhlaError::InvalidProgram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for MhlaError {
    fn from(e: ValidateError) -> Self {
        MhlaError::InvalidProgram(e)
    }
}

impl From<mhla_ir::SerdesError> for MhlaError {
    /// Lifts a serialization-layer failure onto the engine boundary, so a
    /// caller ingesting programs/platforms from disk reports one error
    /// type. A document whose *decoded program* failed validation keeps
    /// its [`ValidateError`] ([`MhlaError::InvalidProgram`]); syntax,
    /// schema and version failures are input problems
    /// ([`MhlaError::InvalidOptions`]).
    fn from(e: mhla_ir::SerdesError) -> Self {
        match e {
            mhla_ir::SerdesError::Invalid(v) => MhlaError::InvalidProgram(v),
            other => MhlaError::InvalidOptions {
                what: other.to_string(),
            },
        }
    }
}

/// Validates a program for engine ingress ([`Program::validate`]).
///
/// # Errors
///
/// [`MhlaError::InvalidProgram`] naming the first structural defect.
pub fn validate_program(program: &Program) -> Result<(), MhlaError> {
    program.validate()?;
    Ok(())
}

/// Validates a platform for engine ingress: at least two layers, layer 0
/// an unbounded off-chip memory, every on-chip layer a nonzero bounded
/// capacity. Monotonicity is deliberately *not* required — grid sweeps
/// legitimately visit non-pyramidal stacks
/// ([`Platform::with_layer_capacities`] documents this).
///
/// # Errors
///
/// [`MhlaError::InvalidOptions`] naming the violation.
pub fn validate_platform(platform: &Platform) -> Result<(), MhlaError> {
    if platform.layer_count() < 2 {
        return Err(MhlaError::InvalidOptions {
            what: "a platform needs at least two memory layers".into(),
        });
    }
    let furthest = platform.layer(platform.furthest());
    if furthest.kind != LayerKind::OffChipSdram || furthest.capacity.is_some() {
        return Err(MhlaError::InvalidOptions {
            what: "layer 0 must be an unbounded off-chip memory".into(),
        });
    }
    for (id, layer) in platform.on_chip_layers() {
        match layer.capacity {
            Some(c) if c > 0 => {}
            _ => {
                return Err(MhlaError::InvalidOptions {
                    what: format!("on-chip layer {id} must have a nonzero capacity"),
                })
            }
        }
    }
    Ok(())
}

/// Validates an objective: weights must be finite and not all zero.
/// Negative weights pass — the engine supports them (gain-bound and floor
/// rules disarm where no sound bound exists).
///
/// # Errors
///
/// [`MhlaError::InvalidObjective`] naming the degenerate weight.
pub fn validate_objective(objective: &Objective) -> Result<(), MhlaError> {
    match *objective {
        Objective::Energy | Objective::Cycles => Ok(()),
        Objective::Weighted {
            energy_weight,
            cycle_weight,
        } => {
            if !energy_weight.is_finite() || !cycle_weight.is_finite() {
                return Err(MhlaError::InvalidObjective {
                    what: format!(
                        "weights must be finite, got energy {energy_weight} / cycles {cycle_weight}"
                    ),
                });
            }
            if energy_weight == 0.0 && cycle_weight == 0.0 {
                return Err(MhlaError::InvalidObjective {
                    what: "both weights are zero: nothing to minimize".into(),
                });
            }
            Ok(())
        }
    }
}

/// Validates a run configuration against its program: a well-formed
/// objective and class overrides that name existing arrays.
///
/// # Errors
///
/// [`MhlaError::InvalidObjective`] / [`MhlaError::InvalidOptions`].
pub fn validate_config(program: &Program, config: &MhlaConfig) -> Result<(), MhlaError> {
    validate_objective(&config.objective)?;
    for (array, _) in &config.class_overrides {
        if array.index() >= program.array_count() {
            return Err(MhlaError::InvalidOptions {
                what: format!(
                    "class override names array {array}, program has {} array(s)",
                    program.array_count()
                ),
            });
        }
    }
    Ok(())
}

/// The shared ingress check of every `try_` run entry point: program,
/// platform, configuration.
pub(crate) fn validate_run_ingress(
    program: &Program,
    platform: &Platform,
    config: &MhlaConfig,
) -> Result<(), MhlaError> {
    validate_program(program)?;
    validate_platform(platform)?;
    validate_config(program, config)
}

/// Validates sweep axes against the platform: every axis must name an
/// on-chip layer of the platform and visit nonzero capacities. (Empty
/// axis lists are legal and yield an empty sweep, as before.)
pub(crate) fn validate_axes(platform: &Platform, axes: &[GridAxis]) -> Result<(), MhlaError> {
    for axis in axes {
        if axis.layer.index() == 0 {
            return Err(MhlaError::InfeasiblePoint {
                what: "an axis resizes the off-chip layer".into(),
            });
        }
        if axis.layer.index() >= platform.layer_count() {
            return Err(MhlaError::InfeasiblePoint {
                what: format!(
                    "axis layer {} out of range (platform has {} layers)",
                    axis.layer,
                    platform.layer_count()
                ),
            });
        }
        if axis.capacities.contains(&0) {
            return Err(MhlaError::InfeasiblePoint {
                what: format!("axis for layer {} visits a zero capacity", axis.layer),
            });
        }
    }
    Ok(())
}

/// Validates the refinement-specific options of
/// [`try_sweep_grid_refined_with`](crate::explore::try_sweep_grid_refined_with):
/// the subdivision depth must be in `1..=16` (depth 0 is the plain grid
/// sweep; past 16 the virtual lattice bookkeeping overflows long before
/// any capacity range benefits), and the axes must name distinct layers
/// (the box cost floor — [`FloorProbe`](crate::cost::FloorProbe) — folds
/// per-layer minima and cannot attribute one layer to two axes).
pub(crate) fn validate_refine_options(
    axes: &[GridAxis],
    opts: &crate::explore::RefineOptions,
) -> Result<(), MhlaError> {
    if opts.depth == 0 || opts.depth > 16 {
        return Err(MhlaError::InvalidOptions {
            what: format!("refinement depth {} out of range (1..=16)", opts.depth),
        });
    }
    for (i, axis) in axes.iter().enumerate() {
        if axes[..i].iter().any(|a| a.layer == axis.layer) {
            return Err(MhlaError::InvalidOptions {
                what: format!(
                    "refinement axes must name distinct layers ({} repeats)",
                    axis.layer
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_hierarchy::LayerId;
    use mhla_ir::{ElemType, ProgramBuilder};

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", &[8], ElemType::U8);
        b.loop_scope("i", 0, 8, 1, |b, li| {
            let iv = b.var(li);
            b.stmt("s").read(a, vec![iv]).finish();
        });
        b.finish()
    }

    #[test]
    fn valid_ingress_passes() {
        let p = tiny();
        let pf = Platform::embedded_default(1024);
        assert!(validate_run_ingress(&p, &pf, &MhlaConfig::default()).is_ok());
    }

    #[test]
    fn degenerate_objectives_are_rejected_but_negative_weights_pass() {
        for (ew, cw) in [
            (f64::NAN, 1.0),
            (1.0, f64::INFINITY),
            (f64::NEG_INFINITY, 0.0),
            (0.0, 0.0),
        ] {
            let obj = Objective::Weighted {
                energy_weight: ew,
                cycle_weight: cw,
            };
            assert!(
                matches!(
                    validate_objective(&obj),
                    Err(MhlaError::InvalidObjective { .. })
                ),
                "({ew}, {cw}) must be rejected"
            );
        }
        let negative = Objective::Weighted {
            energy_weight: -1.0,
            cycle_weight: 1.0,
        };
        assert!(validate_objective(&negative).is_ok());
    }

    #[test]
    fn out_of_range_class_override_is_rejected() {
        let p = tiny();
        let config = MhlaConfig {
            class_overrides: vec![(
                mhla_ir::ArrayId::from_index(7),
                crate::classify::ArrayClass::Internal,
            )],
            ..MhlaConfig::default()
        };
        let err = validate_config(&p, &config).unwrap_err();
        assert!(matches!(err, MhlaError::InvalidOptions { .. }));
        assert!(err.to_string().contains("class override"), "{err}");
    }

    #[test]
    fn bad_axes_are_infeasible_points() {
        let pf = Platform::embedded_default(1024);
        let off_chip = [GridAxis::new(LayerId(0), vec![64u64])];
        assert!(matches!(
            validate_axes(&pf, &off_chip),
            Err(MhlaError::InfeasiblePoint { .. })
        ));
        let out_of_range = [GridAxis::new(LayerId(9), vec![64u64])];
        assert!(matches!(
            validate_axes(&pf, &out_of_range),
            Err(MhlaError::InfeasiblePoint { .. })
        ));
        let zero_cap = [GridAxis::new(LayerId(1), vec![64u64, 0])];
        assert!(matches!(
            validate_axes(&pf, &zero_cap),
            Err(MhlaError::InfeasiblePoint { .. })
        ));
        assert!(validate_axes(&pf, &[]).is_ok(), "empty axes stay legal");
    }

    #[test]
    fn refine_options_bound_depth_and_require_distinct_layers() {
        use crate::explore::RefineOptions;
        let axes = [GridAxis::new(LayerId(1), vec![64u64, 128])];
        for depth in [0usize, 17] {
            let err =
                validate_refine_options(&axes, &RefineOptions::default().depth(depth)).unwrap_err();
            assert!(matches!(err, MhlaError::InvalidOptions { .. }));
            assert!(err.to_string().contains("depth"), "{err}");
        }
        assert!(validate_refine_options(&axes, &RefineOptions::default()).is_ok());
        let dup = [
            GridAxis::new(LayerId(1), vec![64u64]),
            GridAxis::new(LayerId(1), vec![128u64]),
        ];
        let err = validate_refine_options(&dup, &RefineOptions::default()).unwrap_err();
        assert!(err.to_string().contains("distinct"), "{err}");
    }

    #[test]
    fn display_and_source_are_wired() {
        let e = MhlaError::from(ValidateError::DuplicateArrayName { name: "x".into() });
        assert!(e.to_string().contains("invalid program"));
        assert!(std::error::Error::source(&e).is_some());
        let b = MhlaError::BudgetExhausted {
            cause: StopCause::MaxEvals,
            committed: 3,
            total: 9,
        };
        assert!(b.to_string().contains("3 of 9"), "{b}");
    }
}
