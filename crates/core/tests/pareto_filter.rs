//! Property tests for the sort-based Pareto filter: on arbitrary point
//! clouds — ties, exact duplicates, degenerate axes included — the
//! production [`pareto::front`] must select exactly the indices of the
//! frozen all-pairs oracle [`pareto::front_quadratic`], and the grid /
//! sweep surfaces built on it must be mutually non-dominated and
//! complete.
//!
//! Small coordinate ranges are used on purpose: they force coordinate
//! collisions and duplicate points, the classic failure modes of swept
//! dominance filters.

use mhla_core::pareto;
use proptest::prelude::*;

/// The filter semantics, restated independently of both implementations:
/// `i` survives iff no `j` is componentwise ≤ with a different vector.
fn survives_naive(points: &[Vec<f64>], i: usize) -> bool {
    !points
        .iter()
        .enumerate()
        .any(|(j, q)| j != i && q.iter().zip(&points[i]).all(|(a, b)| a <= b) && *q != points[i])
}

fn to_points(raw: &[Vec<u8>]) -> Vec<Vec<f64>> {
    raw.iter()
        .map(|p| p.iter().map(|&c| c as f64).collect())
        .collect()
}

proptest! {
    #[test]
    fn two_dim_clouds_match_the_oracle(
        raw in prop::collection::vec(prop::collection::vec(0u8..8, 2..=2), 0..40)
    ) {
        let points = to_points(&raw);
        let fast = pareto::front(&points);
        let oracle = pareto::front_quadratic(&points);
        prop_assert_eq!(&fast, &oracle);
        for i in 0..points.len() {
            prop_assert_eq!(fast.contains(&i), survives_naive(&points, i), "index {}", i);
        }
    }

    #[test]
    fn three_dim_clouds_match_the_oracle(
        raw in prop::collection::vec(prop::collection::vec(0u8..6, 3..=3), 0..40)
    ) {
        let points = to_points(&raw);
        prop_assert_eq!(pareto::front(&points), pareto::front_quadratic(&points));
    }

    #[test]
    fn four_dim_clouds_match_the_oracle(
        raw in prop::collection::vec(prop::collection::vec(0u8..5, 4..=4), 0..40)
    ) {
        let points = to_points(&raw);
        prop_assert_eq!(pareto::front(&points), pareto::front_quadratic(&points));
    }

    #[test]
    fn one_dim_clouds_match_the_oracle(
        raw in prop::collection::vec(prop::collection::vec(0u8..8, 1..=1), 0..40)
    ) {
        let points = to_points(&raw);
        prop_assert_eq!(pareto::front(&points), pareto::front_quadratic(&points));
    }

    #[test]
    fn cycles_energy_clouds_with_wide_range_match(
        raw in prop::collection::vec((0u32..1000, 0u32..1000), 0..60)
    ) {
        // The (cycles, energy) shape of the sweep surfaces: wide range,
        // occasional collisions.
        let points: Vec<Vec<f64>> = raw
            .iter()
            .map(|&(c, e)| vec![c as f64, e as f64])
            .collect();
        prop_assert_eq!(pareto::front(&points), pareto::front_quadratic(&points));
    }

    #[test]
    fn front_members_are_mutually_non_dominated_and_cover(
        raw in prop::collection::vec(prop::collection::vec(0u8..6, 3..=3), 1..40)
    ) {
        let points = to_points(&raw);
        let front = pareto::front(&points);
        prop_assert!(!front.is_empty(), "a nonempty cloud has a nonempty front");
        // Ascending input order, no duplicates.
        prop_assert!(front.windows(2).all(|w| w[0] < w[1]));
        // Every non-member is dominated by some member.
        for i in 0..points.len() {
            if !front.contains(&i) {
                prop_assert!(
                    front.iter().any(|&j| {
                        points[j].iter().zip(&points[i]).all(|(a, b)| a <= b)
                            && points[j] != points[i]
                    }),
                    "dropped point {} not dominated by any front member",
                    i
                );
            }
        }
    }

    #[test]
    fn duplicates_survive_or_fall_together(
        raw in prop::collection::vec(prop::collection::vec(0u8..4, 2..=2), 0..24)
    ) {
        let points = to_points(&raw);
        let front = pareto::front(&points);
        for i in 0..points.len() {
            for j in 0..points.len() {
                if points[i] == points[j] {
                    prop_assert_eq!(front.contains(&i), front.contains(&j));
                }
            }
        }
    }
}
