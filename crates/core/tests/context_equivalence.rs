//! Equivalence proptests for the shared [`ExplorationContext`] against the
//! from-scratch derivation path on random programs:
//!
//! * a context-backed [`CostModel`] must price any assignment
//!   **bit-for-bit** like a freshly built one (including the
//!   floating-point energy fields), and derive identical transfer
//!   streams — the context's cached TE geometry must be invisible;
//! * a context-backed [`Mhla`] run must equal a standalone run on the
//!   same platform — covering the cached freedom loops through
//!   `te::plan` — at the context's base capacity *and* at resized
//!   capacities, on both two- and three-level platforms.

use mhla_core::{
    classify_arrays, Assignment, CostModel, ExplorationContext, Mhla, MhlaConfig, Objective,
    SelectedCopy, TransferPolicy,
};
use mhla_hierarchy::{LayerId, Platform};
use mhla_ir::{AffineExpr, ArrayId, ElemType, Program, ProgramBuilder};
use mhla_reuse::ReuseAnalysis;
use proptest::prelude::*;

/// Description of a random two-array, up-to-three-level program (same
/// family as the incremental-equivalence proptests).
#[derive(Clone, Debug)]
struct Spec {
    trips: [i64; 3],
    stmts: [(bool, [i64; 3], u8); 3],
    writes_tmp: bool,
}

fn specs() -> impl Strategy<Value = Spec> {
    (
        prop::array::uniform3(2i64..=6),
        prop::array::uniform3((any::<bool>(), prop::array::uniform3(0i64..=3), 1u8..=6)),
        any::<bool>(),
    )
        .prop_map(|(trips, stmts, writes_tmp)| Spec {
            trips,
            stmts,
            writes_tmp,
        })
}

fn build(spec: &Spec) -> Program {
    let mut b = ProgramBuilder::new("random");
    let data = b.array("data", &[512], ElemType::U8);
    let tmp = b.array("tmp", &[64], ElemType::I16);
    let mut loops = Vec::new();
    for (lvl, &trip) in spec.trips.iter().enumerate() {
        let l = b.begin_loop(format!("l{lvl}"), 0, trip, 1);
        loops.push(l);
        let (present, coeffs, cycles) = spec.stmts[lvl];
        if present || lvl == 2 {
            let mut idx = AffineExpr::zero();
            for (i, &l2) in loops.iter().enumerate() {
                idx = idx + AffineExpr::scaled_var(l2, coeffs[i]);
            }
            let mut s = b
                .stmt(format!("s{lvl}"))
                .read(data, vec![idx])
                .compute_cycles(cycles as u64);
            if spec.writes_tmp {
                s = s.write(tmp, vec![AffineExpr::constant_expr(lvl as i64)]);
            }
            s.finish();
        }
    }
    for _ in 0..loops.len() {
        b.end_loop();
    }
    b.finish()
}

/// A random single-array state drawn from the same move space the search
/// enumerates (chains on the first on-chip layer, or a re-home).
fn random_state(
    reuse: &ReuseAnalysis,
    array: ArrayId,
    pick: prop::sample::Index,
) -> (LayerId, Vec<SelectedCopy>) {
    let mut states: Vec<(LayerId, Vec<SelectedCopy>)> = vec![(LayerId(0), Vec::new())];
    for chain in reuse.chains(array, 1) {
        let sel = chain
            .iter()
            .map(|&candidate| SelectedCopy {
                candidate,
                layer: LayerId(1),
            })
            .collect();
        states.push((LayerId(0), sel));
    }
    states.push((LayerId(1), Vec::new()));
    states[pick.index(states.len())].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Context-backed pricing equals fresh pricing bit-for-bit, on the
    /// base platform and on resized variants, for random assignments.
    #[test]
    fn context_cost_model_matches_fresh_model(
        spec in specs(),
        spm in 64u64..4096,
        resized in 64u64..4096,
        picks in (any::<prop::sample::Index>(), any::<prop::sample::Index>()),
        policy_full in any::<bool>(),
    ) {
        let program = build(&spec);
        let base = Platform::embedded_default(spm);
        let config = MhlaConfig::default();
        let ctx = ExplorationContext::new(&program, &base, config.clone());

        let policy = if policy_full {
            TransferPolicy::FullRefresh
        } else {
            TransferPolicy::SlidingDelta
        };
        let mut a = Assignment::baseline(program.array_count(), policy);
        for (i, pick) in [picks.0, picks.1].into_iter().enumerate() {
            let array = ArrayId::from_index(i);
            let (home, chain) = random_state(ctx.reuse(), array, pick);
            a.set_home(array, home);
            for c in chain {
                a.add_copy(c);
            }
        }

        for pf in [base.clone(), base.with_layer_capacity(LayerId(1), resized)] {
            let fresh_reuse = ReuseAnalysis::analyze(&program);
            let fresh = CostModel::new(
                &program,
                &pf,
                &fresh_reuse,
                classify_arrays(&program, &[]),
            );
            let shared = ctx.cost_model(&pf);
            prop_assert_eq!(fresh.evaluate(&a), shared.evaluate(&a));
            prop_assert_eq!(fresh.transfer_streams(&a), shared.transfer_streams(&a));
            prop_assert_eq!(
                fresh.layer_usage(&a, &Default::default()),
                shared.layer_usage(&a, &Default::default())
            );
        }
    }

    /// A context-backed full MHLA run (search + TE planning with the
    /// cached freedom loops) equals a standalone run, across capacities,
    /// objectives and platform depths.
    #[test]
    fn context_backed_run_matches_standalone_run(
        spec in specs(),
        spm in 64u64..4096,
        resized in 64u64..4096,
        three_level in any::<bool>(),
        energy_objective in any::<bool>(),
    ) {
        let program = build(&spec);
        let base = if three_level {
            Platform::three_level(spm.max(128), spm.max(128) / 2)
        } else {
            Platform::embedded_default(spm)
        };
        let config = MhlaConfig {
            objective: if energy_objective { Objective::Energy } else { Objective::Cycles },
            ..MhlaConfig::default()
        };
        let ctx = ExplorationContext::new(&program, &base, config.clone());

        let resized_pf = base.with_layer_capacity(base.closest(), resized);
        for pf in [base.clone(), resized_pf] {
            let standalone = Mhla::new(&program, &pf, config.clone()).run();
            let shared = Mhla::with_context(&ctx, &pf).run_with(None, Some(ctx.moves()));
            prop_assert_eq!(&standalone, &shared);
        }
    }
}
