//! Property tests for the MHLA core on randomly generated loop nests:
//! search results are always valid and capacity-feasible, greedy never
//! loses to the trivial baseline, exhaustive never loses to greedy, and
//! the TE step never violates the size constraint it is given.

use mhla_core::{assign, classify_arrays, te, Assignment, CostModel, MhlaConfig, Objective};
use mhla_hierarchy::Platform;
use mhla_ir::{AffineExpr, ElemType, Program, ProgramBuilder};
use mhla_reuse::ReuseAnalysis;
use proptest::prelude::*;
use std::collections::HashMap;

/// Description of a random two-array, up-to-three-level program.
#[derive(Clone, Debug)]
struct Spec {
    trips: [i64; 3],
    /// Per level: does a statement exist, and its coefficient pattern.
    stmts: [(bool, [i64; 3], u8); 3],
    writes_tmp: bool,
}

fn specs() -> impl Strategy<Value = Spec> {
    (
        prop::array::uniform3(2i64..=6),
        prop::array::uniform3((any::<bool>(), prop::array::uniform3(0i64..=3), 1u8..=6)),
        any::<bool>(),
    )
        .prop_map(|(trips, stmts, writes_tmp)| Spec {
            trips,
            stmts,
            writes_tmp,
        })
}

fn build(spec: &Spec) -> Program {
    let mut b = ProgramBuilder::new("random");
    let data = b.array("data", &[512], ElemType::U8);
    let tmp = b.array("tmp", &[64], ElemType::I16);

    let mut loops = Vec::new();
    for (lvl, &trip) in spec.trips.iter().enumerate() {
        let l = b.begin_loop(format!("l{lvl}"), 0, trip, 1);
        loops.push(l);
        let (present, coeffs, cycles) = spec.stmts[lvl];
        if present || lvl == 2 {
            let mut idx = AffineExpr::zero();
            for (i, &l2) in loops.iter().enumerate() {
                idx = idx + AffineExpr::scaled_var(l2, coeffs[i]);
            }
            let mut s = b
                .stmt(format!("s{lvl}"))
                .read(data, vec![idx])
                .compute_cycles(cycles as u64);
            if spec.writes_tmp {
                s = s.write(tmp, vec![AffineExpr::constant_expr(lvl as i64)]);
            }
            s.finish();
        }
    }
    for _ in 0..loops.len() {
        b.end_loop();
    }
    b.finish()
}

fn flow(
    program: &Program,
    spm: u64,
    objective: Objective,
) -> (ReuseAnalysis, Platform, MhlaConfig) {
    let _ = program;
    let platform = Platform::embedded_default(spm);
    let config = MhlaConfig {
        objective,
        ..MhlaConfig::default()
    };
    (ReuseAnalysis::analyze(program), platform, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The greedy result is structurally valid, fits every layer, and its
    /// score never exceeds the all-off-chip baseline's.
    #[test]
    fn greedy_is_valid_feasible_and_no_worse(spec in specs(), spm in 64u64..2048) {
        let program = build(&spec);
        for objective in [Objective::Cycles, Objective::Energy] {
            let (reuse, platform, config) = flow(&program, spm, objective);
            let model = CostModel::new(&program, &platform, &reuse,
                classify_arrays(&program, &[]));
            let outcome = assign::greedy(&model, &config);
            prop_assert!(outcome
                .assignment
                .validate(&reuse, platform.layer_count())
                .is_ok());
            prop_assert!(model
                .check_capacity(&outcome.assignment, &HashMap::new())
                .is_ok());
            let base = model.evaluate(&Assignment::baseline(
                program.array_count(),
                config.policy,
            ));
            prop_assert!(
                objective.score(&outcome.cost) <= objective.score(&base) + 1e-9,
                "greedy regressed below baseline"
            );
        }
    }

    /// Exhaustive search never loses to greedy (it explores a superset).
    #[test]
    fn exhaustive_dominates_greedy(spec in specs(), spm in 64u64..1024) {
        let program = build(&spec);
        let (reuse, platform, config) = flow(&program, spm, Objective::Cycles);
        let model = CostModel::new(&program, &platform, &reuse,
            classify_arrays(&program, &[]));
        let g = assign::greedy(&model, &config);
        let e = assign::exhaustive(&model, &config, 200_000);
        prop_assert!(
            config.objective.score(&e.cost) <= config.objective.score(&g.cost) + 1e-9,
            "exhaustive {} worse than greedy {}",
            config.objective.score(&e.cost),
            config.objective.score(&g.cost)
        );
    }

    /// The TE step's buffer claims always pass the capacity check it used,
    /// extensions imply extra buffers, and residual stall is bounded by
    /// the unextended stall.
    #[test]
    fn te_respects_its_own_size_constraint(spec in specs(), spm in 64u64..2048) {
        let program = build(&spec);
        let (reuse, platform, config) = flow(&program, spm, Objective::Cycles);
        let model = CostModel::new(&program, &platform, &reuse,
            classify_arrays(&program, &[]));
        let outcome = assign::greedy(&model, &config);
        let schedule = te::plan(&model, &outcome.assignment);
        prop_assert!(model
            .check_capacity(&outcome.assignment, &schedule.buffer_map())
            .is_ok());
        let mut unextended_stall = 0u64;
        for t in &schedule.transfers {
            prop_assert_eq!(t.buffers as usize, t.hoist_depth + 1);
            if t.hoist_depth > 0 {
                prop_assert!(t.ext_cycles > 0);
            }
            prop_assert!(t.ext_cycles >= t.bt_time || !t.fully_hidden);
            unextended_stall += t.stream.first_entries * t.bt_time_full
                + (t.stream.entries - t.stream.first_entries) * t.bt_time;
        }
        prop_assert!(schedule.residual_stall_cycles() <= unextended_stall);
    }

    /// Direct placement is feasible and never slower than all-off-chip.
    #[test]
    fn direct_placement_is_sane(spec in specs(), spm in 64u64..4096) {
        let program = build(&spec);
        let (reuse, platform, config) = flow(&program, spm, Objective::Cycles);
        let model = CostModel::new(&program, &platform, &reuse,
            classify_arrays(&program, &[]));
        let direct = assign::direct_placement(&model, config.policy);
        prop_assert!(direct
            .assignment
            .validate(&reuse, platform.layer_count())
            .is_ok());
        let raw = model.evaluate(&Assignment::baseline(
            program.array_count(),
            config.policy,
        ));
        prop_assert!(direct.cost.total_cycles() <= raw.total_cycles());
        prop_assert!(direct.cost.total_energy_pj() <= raw.total_energy_pj() + 1e-9);
    }

    /// Cost-model consistency: ideal ≤ total; per-layer access counts sum
    /// to the program's total access count regardless of the assignment.
    #[test]
    fn cost_model_access_accounting_is_conserved(spec in specs(), spm in 64u64..2048) {
        let program = build(&spec);
        let (reuse, platform, config) = flow(&program, spm, Objective::Cycles);
        let model = CostModel::new(&program, &platform, &reuse,
            classify_arrays(&program, &[]));
        let info = program.info();
        let total: u64 = program
            .arrays()
            .map(|(a, _)| info.access_counts(a).total())
            .sum();
        for outcome in [
            assign::baseline(&model, config.policy),
            assign::direct_placement(&model, config.policy),
            assign::greedy(&model, &config),
        ] {
            prop_assert!(outcome.cost.ideal_cycles() <= outcome.cost.total_cycles());
            let seen: u64 = outcome.cost.accesses_per_layer.iter().sum();
            prop_assert_eq!(seen, total, "accesses lost or duplicated");
        }
    }
}
