//! Equivalence proptests for the incremental cost evaluator and the
//! cached-option greedy search against their from-scratch oracles:
//!
//! * [`IncrementalCost`] must match the full [`CostModel::evaluate`]
//!   **bit-for-bit** (including the floating-point energy fields) after
//!   every commit of a random move sequence, and its trial evaluation must
//!   match evaluating the applied trial;
//! * its capacity probe must agree with the full
//!   [`CostModel::check_capacity`] / layer-usage path;
//! * [`assign::greedy`] (incremental, cached options) must produce the
//!   same outcome as [`assign::greedy_oracle`] (clone + full evaluate per
//!   candidate move — the seed implementation).

use mhla_core::{
    assign, classify_arrays, Assignment, CostModel, IncrementalCost, MhlaConfig, Objective,
    SelectedCopy, TransferPolicy,
};
use mhla_hierarchy::{LayerId, Platform};
use mhla_ir::{AffineExpr, ArrayId, ElemType, Program, ProgramBuilder};
use mhla_reuse::ReuseAnalysis;
use proptest::prelude::*;
use std::collections::HashMap;

/// Description of a random two-array, up-to-three-level program (same
/// family as the core proptests).
#[derive(Clone, Debug)]
struct Spec {
    trips: [i64; 3],
    stmts: [(bool, [i64; 3], u8); 3],
    writes_tmp: bool,
}

fn specs() -> impl Strategy<Value = Spec> {
    (
        prop::array::uniform3(2i64..=6),
        prop::array::uniform3((any::<bool>(), prop::array::uniform3(0i64..=3), 1u8..=6)),
        any::<bool>(),
    )
        .prop_map(|(trips, stmts, writes_tmp)| Spec {
            trips,
            stmts,
            writes_tmp,
        })
}

fn build(spec: &Spec) -> Program {
    let mut b = ProgramBuilder::new("random");
    let data = b.array("data", &[512], ElemType::U8);
    let tmp = b.array("tmp", &[64], ElemType::I16);
    let mut loops = Vec::new();
    for (lvl, &trip) in spec.trips.iter().enumerate() {
        let l = b.begin_loop(format!("l{lvl}"), 0, trip, 1);
        loops.push(l);
        let (present, coeffs, cycles) = spec.stmts[lvl];
        if present || lvl == 2 {
            let mut idx = AffineExpr::zero();
            for (i, &l2) in loops.iter().enumerate() {
                idx = idx + AffineExpr::scaled_var(l2, coeffs[i]);
            }
            let mut s = b
                .stmt(format!("s{lvl}"))
                .read(data, vec![idx])
                .compute_cycles(cycles as u64);
            if spec.writes_tmp {
                s = s.write(tmp, vec![AffineExpr::constant_expr(lvl as i64)]);
            }
            s.finish();
        }
    }
    for _ in 0..loops.len() {
        b.end_loop();
    }
    b.finish()
}

/// A random single-array state: either a chain of reuse candidates on the
/// on-chip layer, or (for `tmp`) a re-home. Drawn from the same move space
/// the search enumerates.
fn random_states(
    reuse: &ReuseAnalysis,
    array: ArrayId,
    picks: &[prop::sample::Index],
) -> Vec<(LayerId, Vec<SelectedCopy>)> {
    let mut states: Vec<(LayerId, Vec<SelectedCopy>)> = vec![(LayerId(0), Vec::new())];
    for chain in reuse.chains(array, 1) {
        let sel = chain
            .iter()
            .map(|&candidate| SelectedCopy {
                candidate,
                layer: LayerId(1),
            })
            .collect();
        states.push((LayerId(0), sel));
    }
    states.push((LayerId(1), Vec::new())); // re-home
    picks
        .iter()
        .map(|p| states[p.index(states.len())].clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every commit of a random move sequence, the incremental total
    /// equals the oracle bit-for-bit, trial evaluation matches evaluating
    /// the applied trial, and the capacity probe agrees with the full
    /// check.
    #[test]
    fn incremental_matches_oracle_over_move_sequences(
        spec in specs(),
        spm in 64u64..4096,
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..12),
        which in prop::collection::vec(any::<bool>(), 12),
    ) {
        let program = build(&spec);
        let platform = Platform::embedded_default(spm);
        let reuse = ReuseAnalysis::analyze(&program);
        let model = CostModel::new(
            &program,
            &platform,
            &reuse,
            classify_arrays(&program, &[]),
        );
        let start = Assignment::baseline(program.array_count(), TransferPolicy::default());
        let mut inc = IncrementalCost::new(&model, start.clone());

        // Initial state agrees.
        prop_assert_eq!(inc.cost(), &model.evaluate(inc.assignment()));

        for (i, pick) in picks.iter().enumerate() {
            let array = if which[i] {
                ArrayId::from_index(0)
            } else {
                ArrayId::from_index(1)
            };
            let states = random_states(&reuse, array, std::slice::from_ref(pick));
            let (home, chain) = states[0].clone();

            // Trial evaluation matches evaluating the applied trial.
            let trial_cost = inc.evaluate_array_state(array, home, &chain);
            let mut applied = inc.assignment().clone();
            applied.clear_copies_of(array);
            applied.set_home(array, home);
            for &c in &chain {
                applied.add_copy(c);
            }
            prop_assert_eq!(&trial_cost, &model.evaluate(&applied));

            // Capacity probe agrees with the full check + usage sum.
            let probe = inc.onchip_required_with(array, home, &chain);
            let full = model.check_capacity(&applied, &HashMap::new());
            prop_assert_eq!(probe.is_some(), full.is_ok());
            if let Some(bytes) = probe {
                let usage: u64 = model
                    .layer_usage(&applied, &HashMap::new())
                    .iter()
                    .skip(1)
                    .map(|u| u.required)
                    .sum();
                prop_assert_eq!(bytes, usage);
            }

            // Commit and re-check the running total, bit for bit.
            inc.commit_array_state(array, home, &chain);
            prop_assert_eq!(inc.assignment(), &applied);
            prop_assert_eq!(inc.cost(), &model.evaluate(&applied));
        }
    }

    /// The incremental greedy and the from-scratch oracle greedy take the
    /// same decisions: same final assignment, cost and step count.
    #[test]
    fn greedy_matches_greedy_oracle(spec in specs(), spm in 64u64..4096) {
        let program = build(&spec);
        let platform = Platform::embedded_default(spm);
        let reuse = ReuseAnalysis::analyze(&program);
        let model = CostModel::new(
            &program,
            &platform,
            &reuse,
            classify_arrays(&program, &[]),
        );
        for objective in [Objective::Cycles, Objective::Energy] {
            let config = MhlaConfig {
                objective,
                ..MhlaConfig::default()
            };
            let fast = assign::greedy(&model, &config);
            let oracle = assign::greedy_oracle(&model, &config);
            prop_assert_eq!(&fast.assignment, &oracle.assignment);
            prop_assert_eq!(&fast.cost, &oracle.cost);
            prop_assert_eq!(fast.steps, oracle.steps);
        }
    }

    /// `greedy_from` started at the baseline is exactly `greedy`.
    #[test]
    fn greedy_from_baseline_is_greedy(spec in specs(), spm in 64u64..2048) {
        let program = build(&spec);
        let platform = Platform::embedded_default(spm);
        let reuse = ReuseAnalysis::analyze(&program);
        let model = CostModel::new(
            &program,
            &platform,
            &reuse,
            classify_arrays(&program, &[]),
        );
        let config = MhlaConfig::default();
        let a = assign::greedy(&model, &config);
        let b = assign::greedy_from(
            &model,
            &config,
            Assignment::baseline(program.array_count(), config.policy),
        );
        prop_assert_eq!(a.assignment, b.assignment);
        prop_assert_eq!(a.cost, b.cost);
    }

    /// The warm-started portfolio never scores worse than the cold search,
    /// and with no warm start it IS the cold search.
    #[test]
    fn portfolio_never_loses_to_cold(spec in specs(), spm in 64u64..2048, warm_spm in 64u64..2048) {
        let program = build(&spec);
        let reuse = ReuseAnalysis::analyze(&program);
        let config = MhlaConfig::default();

        // Warm start: the greedy solution at a (generally different)
        // capacity — exactly what the capacity sweep passes along.
        let warm_pf = Platform::embedded_default(warm_spm.min(spm));
        let warm_model = CostModel::new(
            &program,
            &warm_pf,
            &reuse,
            classify_arrays(&program, &[]),
        );
        let warm = assign::greedy(&warm_model, &config).assignment;

        let platform = Platform::embedded_default(spm);
        let model = CostModel::new(
            &program,
            &platform,
            &reuse,
            classify_arrays(&program, &[]),
        );
        let cold = assign::greedy(&model, &config);
        let portfolio = assign::greedy_portfolio(&model, &config, Some(&warm));
        prop_assert!(
            config.objective.score(&portfolio.cost)
                <= config.objective.score(&cold.cost),
            "portfolio must never lose to cold"
        );
        let solo = assign::greedy_portfolio(&model, &config, None);
        prop_assert_eq!(solo.assignment, cold.assignment);
        prop_assert_eq!(solo.cost, cold.cost);
    }
}
