//! Property tests for the simulator on randomly generated programs and
//! scratchpad sizes: cycle counts are always sandwiched between the ideal
//! and the serial static estimates, energy matches the static model, and
//! access accounting is conserved.

use mhla_core::{assign, classify_arrays, te, CostModel, MhlaConfig};
use mhla_hierarchy::Platform;
use mhla_ir::{ElemType, Program, ProgramBuilder};
use mhla_reuse::ReuseAnalysis;
use mhla_sim::Simulator;
use proptest::prelude::*;

/// Random blocked-processing program: `blocks` tiles of `tile` bytes,
/// scanned `reps` times with `compute` cycles per element, optionally
/// with a producer nest writing the data first.
#[derive(Clone, Debug)]
struct Spec {
    blocks: i64,
    tile: i64,
    reps: i64,
    compute: u64,
    producer: bool,
}

fn specs() -> impl Strategy<Value = Spec> {
    (2i64..=12, 8i64..=64, 1i64..=4, 0u64..=6, any::<bool>()).prop_map(
        |(blocks, tile, reps, compute, producer)| Spec {
            blocks,
            tile,
            reps,
            compute,
            producer,
        },
    )
}

fn build(s: &Spec) -> Program {
    let mut b = ProgramBuilder::new("rand_sim");
    let n = (s.blocks * s.tile) as u64;
    let data = b.array("data", &[n], ElemType::U8);
    if s.producer {
        b.loop_scope("w", 0, s.blocks * s.tile, 1, |b, lw| {
            let w = b.var(lw);
            b.stmt("produce")
                .write(data, vec![w])
                .compute_cycles(2)
                .finish();
        });
    }
    let lb = b.begin_loop("blk", 0, s.blocks, 1);
    let lr = b.begin_loop("rep", 0, s.reps, 1);
    let li = b.begin_loop("i", 0, s.tile, 1);
    let (blk, i) = (b.var(lb), b.var(li));
    b.stmt("use")
        .read(data, vec![blk * s.tile + i])
        .compute_cycles(s.compute)
        .finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();
    let _ = lr;
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// ideal ≤ simulated ≤ serial-static, for the greedy assignment with
    /// its TE schedule, at arbitrary scratchpad sizes.
    #[test]
    fn simulation_is_always_sandwiched(spec in specs(), spm in 16u64..4096) {
        let program = build(&spec);
        let platform = Platform::embedded_default(spm);
        let reuse = ReuseAnalysis::analyze(&program);
        let model = CostModel::new(&program, &platform, &reuse,
            classify_arrays(&program, &[]));
        let config = MhlaConfig::default();
        let outcome = assign::greedy(&model, &config);
        let schedule = te::plan(&model, &outcome.assignment);
        let sim = Simulator::new(&model, &outcome.assignment, &schedule).run();
        prop_assert!(
            sim.total_cycles() >= outcome.cost.ideal_cycles(),
            "sim {} below ideal {}",
            sim.total_cycles(),
            outcome.cost.ideal_cycles()
        );
        prop_assert!(
            sim.total_cycles() <= outcome.cost.total_cycles(),
            "sim {} above serial {}",
            sim.total_cycles(),
            outcome.cost.total_cycles()
        );
    }

    /// Simulated energy equals the static estimate (same access counts,
    /// same transfer volumes), and per-layer access totals are conserved.
    #[test]
    fn energy_and_access_accounting_match_static(spec in specs(), spm in 16u64..4096) {
        let program = build(&spec);
        let platform = Platform::embedded_default(spm);
        let reuse = ReuseAnalysis::analyze(&program);
        let model = CostModel::new(&program, &platform, &reuse,
            classify_arrays(&program, &[]));
        let outcome = assign::greedy(&model, &MhlaConfig::default());
        let schedule = te::plan(&model, &outcome.assignment);
        let sim = Simulator::new(&model, &outcome.assignment, &schedule).run();
        let rel = (sim.total_energy_pj() - outcome.cost.total_energy_pj()).abs()
            / outcome.cost.total_energy_pj().max(1.0);
        prop_assert!(rel < 1e-9, "energy mismatch {rel}");
        prop_assert_eq!(&sim.accesses_per_layer, &outcome.cost.accesses_per_layer);
        prop_assert_eq!(sim.transfers, outcome.cost.transfer_count);
    }

    /// TE can only help: simulated cycles with the TE schedule never
    /// exceed simulated cycles with prefetching disabled.
    #[test]
    fn te_never_hurts_in_simulation(spec in specs(), spm in 16u64..4096) {
        let program = build(&spec);
        let platform = Platform::embedded_default(spm);
        let reuse = ReuseAnalysis::analyze(&program);
        let model = CostModel::new(&program, &platform, &reuse,
            classify_arrays(&program, &[]));
        let outcome = assign::greedy(&model, &MhlaConfig::default());
        let schedule = te::plan(&model, &outcome.assignment);
        let with_te = Simulator::new(&model, &outcome.assignment, &schedule).run();
        let no_te = te::TeSchedule { applicable: true, transfers: Vec::new() };
        let without = Simulator::new(&model, &outcome.assignment, &no_te).run();
        prop_assert!(
            with_te.total_cycles() <= without.total_cycles(),
            "TE made it worse: {} > {}",
            with_te.total_cycles(),
            without.total_cycles()
        );
        // And busy cycles (work) are identical — TE only moves waits.
        prop_assert_eq!(with_te.busy_cycles, without.busy_cycles);
    }
}
