//! Simulation statistics.

use std::fmt;

/// Outcome of one simulated program execution.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SimReport {
    /// CPU busy cycles (compute + memory access latency).
    pub busy_cycles: u64,
    /// CPU cycles stalled waiting for block transfers.
    pub stall_cycles: u64,
    /// Cycles the DMA engine spent streaming (sum over channels).
    pub dma_busy_cycles: u64,
    /// Block-transfer instances executed.
    pub transfers: u64,
    /// Bytes moved by block transfers.
    pub transfer_bytes: u64,
    /// CPU accesses per layer (indexed by layer id).
    pub accesses_per_layer: Vec<u64>,
    /// Energy of CPU accesses, picojoule.
    pub access_energy_pj: f64,
    /// Energy of block transfers, picojoule.
    pub transfer_energy_pj: f64,
}

impl SimReport {
    /// Wall-clock cycles of the run (busy + stall).
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles + self.stall_cycles
    }

    /// Total memory energy, picojoule.
    pub fn total_energy_pj(&self) -> f64 {
        self.access_energy_pj + self.transfer_energy_pj
    }

    /// Fraction of cycles lost to transfer waits (0 when idle-free).
    pub fn stall_fraction(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / total as f64
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles ({} busy + {} stall, {:.1}% stalled), {} BTs / {} B, {:.2} uJ",
            self.total_cycles(),
            self.busy_cycles,
            self.stall_cycles,
            100.0 * self.stall_fraction(),
            self.transfers,
            self.transfer_bytes,
            self.total_energy_pj() / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = SimReport {
            busy_cycles: 700,
            stall_cycles: 300,
            access_energy_pj: 10.0,
            transfer_energy_pj: 5.0,
            ..SimReport::default()
        };
        assert_eq!(r.total_cycles(), 1000);
        assert_eq!(r.total_energy_pj(), 15.0);
        assert!((r.stall_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_benign() {
        let r = SimReport::default();
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(r.stall_fraction(), 0.0);
        assert!(r.to_string().contains("0 cycles"));
    }
}
