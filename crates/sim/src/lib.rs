//! # mhla-sim — cycle-approximate platform simulator
//!
//! The paper evaluates MHLA on an embedded platform: an in-order CPU with
//! software-controlled on-chip scratchpads, an off-chip SDRAM, and a DMA
//! "memory transfer engine" that copies blocks concurrently with CPU
//! execution. This crate rebuilds that platform as a trace-driven
//! simulator:
//!
//! * the CPU walks the loop tree; every statement costs its compute cycles
//!   plus the access latency of the layer serving each reference (as
//!   decided by the MHLA assignment);
//! * block transfers are issued at the points decided by the Time-Extension
//!   schedule (at the consumption point without TE; one or more loop
//!   iterations earlier with TE) and executed by DMA channels with finite
//!   bandwidth, setup cost and priority arbitration;
//! * the CPU **stalls** when it reaches a copy whose transfer has not
//!   landed — these wait cycles are exactly what Figure 2's TE bars remove;
//! * energy is tallied per access and per transferred element, using the
//!   same per-layer models as the static estimator (so TE leaves energy
//!   unchanged, as the paper notes).
//!
//! Loop subtrees that contain no transfer activity are aggregated
//! analytically (cost per iteration × iterations), so simulation time is
//! proportional to the number of *transfer events*, not statement
//! executions.
//!
//! # Example
//!
//! ```
//! use mhla_core::{Mhla, MhlaConfig};
//! use mhla_hierarchy::Platform;
//! use mhla_ir::{ElemType, ProgramBuilder};
//! use mhla_sim::Simulator;
//!
//! let mut b = ProgramBuilder::new("scan");
//! let tab = b.array("tab", &[256], ElemType::U8);
//! let lr = b.begin_loop("rep", 0, 64, 1);
//! let li = b.begin_loop("i", 0, 256, 1);
//! let iv = b.var(li);
//! b.stmt("s").read(tab, vec![iv]).compute_cycles(2).finish();
//! b.end_loop();
//! b.end_loop();
//! let program = b.finish();
//! let platform = Platform::embedded_default(1024);
//!
//! let mhla = Mhla::new(&program, &platform, MhlaConfig::default());
//! let model = mhla.cost_model();
//! let result = mhla.run();
//! let report = Simulator::new(&model, &result.assignment, &result.te).run();
//! assert!(report.total_cycles() < result.baseline_cycles());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod stats;

pub use engine::Simulator;
pub use stats::SimReport;
