//! The trace-driven simulation engine.
//!
//! Hot-path lookups (owner streams, hot-loop membership, iteration start
//! times, pure-subtree stats) are dense `Vec`s indexed by the arena
//! indices of `LoopId`/`StmtId` — the simulator visits these tables once
//! per loop iteration and per transfer event, where hashing dominated the
//! profile before.

use std::collections::{HashMap, VecDeque};

use mhla_core::te::TeSchedule;
use mhla_core::{Assignment, CostModel};
use mhla_hierarchy::LayerId;
use mhla_ir::{LoopId, NodeId, StmtId};

use crate::stats::SimReport;

/// Per-subtree analytic cost, used to aggregate transfer-free regions.
#[derive(Clone, Debug, Default)]
struct PureStats {
    cycles: u64,
    accesses: Vec<u64>,
    energy_pj: f64,
}

impl PureStats {
    fn add_scaled(&mut self, other: &PureStats, times: u64) {
        self.cycles += other.cycles * times;
        if self.accesses.len() < other.accesses.len() {
            self.accesses.resize(other.accesses.len(), 0);
        }
        for (a, b) in self.accesses.iter_mut().zip(&other.accesses) {
            *a += b * times;
        }
        self.energy_pj += other.energy_pj * times as f64;
    }
}

/// Runtime state of one block-transfer stream.
#[derive(Debug)]
struct StreamRt {
    src: LayerId,
    dst: LayerId,
    full_bytes: u64,
    steady_bytes: u64,
    writeback_bytes: u64,
    elem_bytes: u64,
    /// TE decision.
    hoist: usize,
    freedom: Vec<LoopId>,
    priority: u32,
    /// Finish times of issued-but-unconsumed transfers (FIFO).
    pending: VecDeque<u64>,
    /// Transfers issued since the current loop entry (0 ⇒ next is a fill).
    iter_in_entry: u64,
}

/// Cycle-approximate simulator for a fixed (model, assignment, schedule).
///
/// See the crate docs for the platform semantics. Construct with
/// [`Simulator::new`] and call [`run`](Simulator::run); the simulator is
/// stateless between runs.
#[derive(Debug)]
pub struct Simulator<'a> {
    model: &'a CostModel<'a>,
    assignment: &'a Assignment,
    te: &'a TeSchedule,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over an MHLA result.
    pub fn new(model: &'a CostModel<'a>, assignment: &'a Assignment, te: &'a TeSchedule) -> Self {
        Simulator {
            model,
            assignment,
            te,
        }
    }

    /// Simulates one program execution.
    pub fn run(&self) -> SimReport {
        Runtime::new(self.model, self.assignment, self.te).run()
    }
}

struct Runtime<'a> {
    model: &'a CostModel<'a>,
    report: SimReport,
    /// DMA channel free-at times (empty = no engine).
    channels: Vec<u64>,
    streams: Vec<StreamRt>,
    /// Streams owned by each loop (indexed by loop index), priority order.
    owner_streams: Vec<Vec<usize>>,
    /// Whole-array streams to wait for, per root-node index.
    start_waits: Vec<Vec<usize>>,
    /// Loops that contain transfer activity (cannot be aggregated),
    /// indexed by loop index.
    hot: Vec<bool>,
    /// Start time of the current iteration of each in-progress loop,
    /// indexed by loop index (`None` when the loop is not running).
    iter_start: Vec<Option<u64>>,
    /// Aggregated transfer-free stats per loop / statement, lazily filled.
    pure_loops: Vec<Option<PureStats>>,
    pure_stmts: Vec<Option<PureStats>>,
    /// Serving layer per (statement, access index).
    serving: Vec<Vec<LayerId>>,
}

impl<'a> Runtime<'a> {
    fn new(model: &'a CostModel<'a>, assignment: &'a Assignment, te: &'a TeSchedule) -> Self {
        let program = model.program();
        let platform = model.platform();
        let info = model.info();
        let timeline = model.timeline();

        // TE plan lookup by candidate.
        let plans: HashMap<_, _> = te
            .transfers
            .iter()
            .map(|t| (t.stream.copy.candidate, t))
            .collect();

        let mut streams = Vec::new();
        let mut owner_streams: Vec<Vec<usize>> = vec![Vec::new(); program.loop_count()];
        let mut start_waits: Vec<Vec<usize>> = vec![Vec::new(); program.roots().len()];
        let mut hot = vec![false; program.loop_count()];

        for stream in model.transfer_streams(assignment) {
            let plan = plans.get(&stream.copy.candidate);
            let idx = streams.len();
            let elem = program
                .array(stream.copy.candidate.array)
                .elem
                .bytes()
                .max(1);
            let rt = StreamRt {
                src: stream.src,
                dst: stream.dst,
                full_bytes: stream.full_bytes,
                steady_bytes: stream.steady_bytes,
                writeback_bytes: stream.writeback_bytes,
                elem_bytes: elem,
                hoist: plan.map_or(0, |p| p.hoist_depth),
                freedom: plan.map_or_else(Vec::new, |p| p.freedom.clone()),
                priority: plan.map_or(u32::MAX, |p| p.priority),
                pending: VecDeque::new(),
                iter_in_entry: 0,
            };
            match stream.owner {
                Some(l) => {
                    owner_streams[l.index()].push(idx);
                    // The owner and all its ancestors must be walked.
                    hot[l.index()] = true;
                    let mut cur = info.parent(NodeId::Loop(l));
                    while let Some(p) = cur {
                        hot[p.index()] = true;
                        cur = info.parent(NodeId::Loop(p));
                    }
                }
                None => {
                    // Wait before the root node containing the earliest
                    // reader of the copied array.
                    let array = stream.copy.candidate.array;
                    let first_reader = program
                        .stmts()
                        .filter(|(_, s)| {
                            s.accesses
                                .iter()
                                .any(|a| a.array == array && a.kind == mhla_ir::AccessKind::Read)
                        })
                        .min_by_key(|(sid, _)| timeline.stmt_span(*sid).start)
                        .map(|(sid, _)| sid);
                    if let Some(sid) = first_reader {
                        let root_idx = root_index_of(program, info, sid);
                        start_waits[root_idx].push(idx);
                    }
                }
            }
            streams.push(rt);
        }
        for v in owner_streams.iter_mut().chain(start_waits.iter_mut()) {
            v.sort_by_key(|&i| streams[i].priority);
        }

        // Serving layers per access.
        let serving = program
            .stmts()
            .map(|(sid, stmt)| {
                stmt.accesses
                    .iter()
                    .map(|a| model.serving_layer(assignment, sid, a.array))
                    .collect()
            })
            .collect();

        let channels = match platform.dma() {
            Some(d) => vec![0u64; d.channels as usize],
            None => Vec::new(),
        };

        Runtime {
            model,
            report: SimReport {
                accesses_per_layer: vec![0; platform.layer_count()],
                ..SimReport::default()
            },
            channels,
            streams,
            owner_streams,
            start_waits,
            hot,
            iter_start: vec![None; program.loop_count()],
            pure_loops: vec![None; program.loop_count()],
            pure_stmts: vec![None; program.stmt_count()],
            serving,
        }
    }

    fn run(mut self) -> SimReport {
        let mut now = 0u64;
        // Whole-array fills are issued at program start, priority order.
        let mut startup: Vec<usize> = self.start_waits.iter().flatten().copied().collect();
        startup.sort_by_key(|&i| self.streams[i].priority);
        for idx in startup {
            self.issue(idx, 0);
        }
        let roots = self.model.program().roots().to_vec();
        for (i, &node) in roots.iter().enumerate() {
            for idx in self.start_waits[i].clone() {
                now = self.consume(idx, now);
            }
            now = self.sim_node(node, now);
        }
        // Drain: the program ends when outstanding write-backs land.
        let drain = self.channels.iter().copied().max().unwrap_or(0);
        if drain > now {
            self.report.stall_cycles += drain - now;
        }
        self.report
    }

    fn sim_node(&mut self, node: NodeId, now: u64) -> u64 {
        match node {
            NodeId::Stmt(s) => {
                let cost = self.stmt_stats(s);
                self.tally(&cost, 1);
                now + cost.cycles
            }
            NodeId::Loop(l) if !self.hot[l.index()] => {
                let stats = self.pure_stats(node).clone();
                self.tally(&stats, 1);
                now + stats.cycles
            }
            NodeId::Loop(l) => self.sim_hot_loop(l, now),
        }
    }

    fn sim_hot_loop(&mut self, l: LoopId, mut now: u64) -> u64 {
        let program = self.model.program();
        let trips = program.loop_(l).trip_count();
        let body = program.loop_(l).body.clone();
        let owned = self.owner_streams[l.index()].clone();

        // New loop entry: reset per-entry fill counters.
        for &s in &owned {
            self.streams[s].iter_in_entry = 0;
        }
        // Pre-issue iteration 0 for extended streams. Extensions beyond the
        // owner level start the transfer when the enclosing (hoisted) loop
        // iteration began — we recorded those times on the way down.
        let entry_time = now;
        for &s in &owned {
            let st = &self.streams[s];
            if st.hoist >= 1 && trips > 0 {
                let at = if st.hoist >= 2 {
                    let outer = st.freedom[st.hoist - 1];
                    self.iter_start[outer.index()].unwrap_or(entry_time)
                } else {
                    entry_time
                };
                self.issue(s, at);
            }
        }

        for _i in 0..trips {
            self.iter_start[l.index()] = Some(now);
            // Consume this iteration's transfers (priority order).
            for &s in &owned {
                now = self.consume(s, now);
            }
            // Prefetch the next iteration for extended streams.
            for &s in &owned {
                if self.streams[s].hoist >= 1 && self.streams[s].iter_in_entry < trips {
                    self.issue(s, now);
                }
            }
            // Execute the body.
            for &child in &body {
                now = self.sim_node(child, now);
            }
            // Drain dirty data (non-blocking write-back).
            for &s in &owned {
                if self.streams[s].writeback_bytes > 0 {
                    self.writeback(s, now);
                }
            }
        }
        self.iter_start[l.index()] = None;
        now
    }

    /// Issues the next transfer instance of stream `s` no earlier than `at`.
    fn issue(&mut self, s: usize, at: u64) {
        let (bytes, src, dst, elem) = {
            let st = &mut self.streams[s];
            let bytes = if st.iter_in_entry == 0 {
                st.full_bytes
            } else {
                st.steady_bytes
            };
            st.iter_in_entry += 1;
            (bytes, st.src, st.dst, st.elem_bytes)
        };
        if bytes == 0 {
            self.streams[s].pending.push_back(at);
            return;
        }
        let finish = self.dma_or_cpu_transfer(at, bytes, src, dst, elem);
        self.streams[s].pending.push_back(finish);
    }

    /// Waits until stream `s`'s oldest pending transfer lands; issues it on
    /// the spot when nothing was prefetched (the no-TE path).
    fn consume(&mut self, s: usize, now: u64) -> u64 {
        if self.streams[s].pending.is_empty() {
            self.issue(s, now);
        }
        let finish = self.streams[s].pending.pop_front().expect("just issued");
        if finish > now {
            self.report.stall_cycles += finish - now;
            finish
        } else {
            now
        }
    }

    fn writeback(&mut self, s: usize, now: u64) {
        let st = &self.streams[s];
        let (bytes, src, dst, elem) = (st.writeback_bytes, st.dst, st.src, st.elem_bytes);
        // Dirty data flows from the copy back to its parent; completion is
        // not waited on (drained at program end).
        let _ = self.dma_or_cpu_transfer(now, bytes, src, dst, elem);
    }

    /// Executes a block transfer on a DMA channel (or the CPU when the
    /// platform has no engine — those cycles stall the CPU directly, which
    /// callers account for via the returned finish time being *added* to
    /// the pending queue and consumed immediately).
    fn dma_or_cpu_transfer(
        &mut self,
        at: u64,
        bytes: u64,
        src: LayerId,
        dst: LayerId,
        elem: u64,
    ) -> u64 {
        let platform = self.model.platform();
        let src_l = platform.layer(src);
        let dst_l = platform.layer(dst);
        self.report.transfers += 1;
        self.report.transfer_bytes += bytes;
        match platform.dma() {
            Some(dma) => {
                let duration = dma.transfer_cycles(bytes, src_l, dst_l);
                self.report.transfer_energy_pj += dma.transfer_energy_pj(bytes, elem, src_l, dst_l);
                // Pick the earliest-free channel: O(1) for the common
                // 1-2 channel engines, linear scan only beyond that.
                let ch = match self.channels.as_slice() {
                    [_] => 0,
                    [a, b] => usize::from(b < a),
                    _ => (0..self.channels.len())
                        .min_by_key(|&c| self.channels[c])
                        .expect("dma has at least one channel"),
                };
                let start = at.max(self.channels[ch]);
                let finish = start + duration;
                self.channels[ch] = finish;
                self.report.dma_busy_cycles += duration;
                finish
            }
            None => {
                // CPU copy loop: blocking element moves.
                let elems = bytes / elem;
                let cycles = elems * (platform.access_cycles(src) + platform.access_cycles(dst));
                self.report.transfer_energy_pj +=
                    elems as f64 * (src_l.read_energy_pj + dst_l.write_energy_pj);
                at + cycles
            }
        }
    }

    fn stmt_stats(&self, s: StmtId) -> PureStats {
        let program = self.model.program();
        let platform = self.model.platform();
        let stmt = program.stmt(s);
        let mut st = PureStats {
            cycles: stmt.compute_cycles,
            accesses: vec![0; platform.layer_count()],
            energy_pj: 0.0,
        };
        for (k, acc) in stmt.accesses.iter().enumerate() {
            let layer = self.serving[s.index()][k];
            st.cycles += platform.access_cycles(layer);
            st.accesses[layer.index()] += 1;
            st.energy_pj += platform
                .layer(layer)
                .access_energy_pj(acc.kind == mhla_ir::AccessKind::Write);
        }
        st
    }

    fn pure_stats(&mut self, node: NodeId) -> &PureStats {
        let filled = match node {
            NodeId::Stmt(s) => self.pure_stmts[s.index()].is_some(),
            NodeId::Loop(l) => self.pure_loops[l.index()].is_some(),
        };
        if !filled {
            let stats = match node {
                NodeId::Stmt(s) => self.stmt_stats(s),
                NodeId::Loop(l) => {
                    let lp = self.model.program().loop_(l).clone();
                    let mut acc = PureStats {
                        accesses: vec![0; self.model.platform().layer_count()],
                        ..PureStats::default()
                    };
                    for &child in &lp.body {
                        let child_stats = self.pure_stats(child).clone();
                        acc.add_scaled(&child_stats, 1);
                    }
                    let mut total = PureStats {
                        accesses: vec![0; self.model.platform().layer_count()],
                        ..PureStats::default()
                    };
                    total.add_scaled(&acc, lp.trip_count());
                    total
                }
            };
            match node {
                NodeId::Stmt(s) => self.pure_stmts[s.index()] = Some(stats),
                NodeId::Loop(l) => self.pure_loops[l.index()] = Some(stats),
            }
        }
        match node {
            NodeId::Stmt(s) => self.pure_stmts[s.index()].as_ref().expect("filled"),
            NodeId::Loop(l) => self.pure_loops[l.index()].as_ref().expect("filled"),
        }
    }

    fn tally(&mut self, stats: &PureStats, times: u64) {
        self.report.busy_cycles += stats.cycles * times;
        for (i, &a) in stats.accesses.iter().enumerate() {
            self.report.accesses_per_layer[i] += a * times;
        }
        self.report.access_energy_pj += stats.energy_pj * times as f64;
    }
}

fn root_index_of(
    program: &mhla_ir::Program,
    info: &mhla_ir::ProgramInfo<'_>,
    stmt: StmtId,
) -> usize {
    let path = info.enclosing_loops(NodeId::Stmt(stmt));
    let top: NodeId = match path.first() {
        Some(&l) => NodeId::Loop(l),
        None => NodeId::Stmt(stmt),
    };
    program
        .roots()
        .iter()
        .position(|&r| r == top)
        .expect("statement must live under some root")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_core::{Mhla, MhlaConfig, TransferPolicy};
    use mhla_hierarchy::Platform;
    use mhla_ir::{ElemType, Program, ProgramBuilder};

    fn blocked(compute: u64) -> Program {
        let mut b = ProgramBuilder::new("blocked");
        let data = b.array("data", &[2048], ElemType::U8);
        let lb = b.begin_loop("blk", 0, 32, 1);
        let li = b.begin_loop("i", 0, 64, 1);
        let (blk, i) = (b.var(lb), b.var(li));
        b.stmt("use")
            .read(data, vec![blk * 64 + i])
            .compute_cycles(compute)
            .finish();
        b.end_loop();
        b.end_loop();
        let _ = lb;
        b.finish()
    }

    #[test]
    fn baseline_simulation_matches_static_model_exactly() {
        let p = blocked(4);
        let pf = Platform::embedded_default(1024);
        let mhla = Mhla::new(
            &p,
            &pf,
            MhlaConfig {
                disable_te: true,
                ..MhlaConfig::default()
            },
        );
        let model = mhla.cost_model();
        let baseline =
            mhla_core::Assignment::baseline(p.array_count(), TransferPolicy::FullRefresh);
        let te = mhla_core::te::plan(&model, &baseline);
        let report = Simulator::new(&model, &baseline, &te).run();
        let expected = model.evaluate(&baseline);
        assert_eq!(report.total_cycles(), expected.total_cycles());
        assert_eq!(report.stall_cycles, 0, "no transfers, no stalls");
        assert_eq!(report.accesses_per_layer, expected.accesses_per_layer);
        assert!((report.total_energy_pj() - expected.total_energy_pj()).abs() < 1e-6);
    }

    #[test]
    fn unextended_transfers_stall_the_full_bt_time() {
        let p = blocked(4);
        let pf = Platform::embedded_default(64); // single buffer only: no TE
        let mhla = Mhla::new(&p, &pf, MhlaConfig::default());
        let model = mhla.cost_model();
        let result = mhla.run();
        assert!(!result.assignment.copies().is_empty(), "tile staged");
        assert_eq!(result.te.extended_count(), 0, "no room to extend");
        let report = Simulator::new(&model, &result.assignment, &result.te).run();
        // Static step-1 estimate (serial transfers) matches the simulator.
        assert_eq!(report.total_cycles(), result.mhla_cycles());
        assert!(report.stall_cycles > 0);
    }

    #[test]
    fn te_removes_steady_state_stalls() {
        let p = blocked(4);
        let pf = Platform::embedded_default(1024);
        let mhla = Mhla::new(&p, &pf, MhlaConfig::default());
        let model = mhla.cost_model();
        let result = mhla.run();
        assert!(result.te.extended_count() > 0);
        let report = Simulator::new(&model, &result.assignment, &result.te).run();
        // Only the first fill can stall; 31 steady-state fetches are hidden.
        let dma = pf.dma().unwrap();
        let first_fill = dma.transfer_cycles(64, pf.layer(LayerId(0)), pf.layer(LayerId(1)));
        assert!(
            report.stall_cycles <= first_fill,
            "stalls {} exceed one fill {first_fill}",
            report.stall_cycles
        );
        // Sandwich: ideal ≤ sim ≤ static step-1.
        assert!(report.total_cycles() >= result.ideal_cycles());
        assert!(report.total_cycles() <= result.mhla_cycles());
    }

    #[test]
    fn energy_is_identical_with_and_without_te() {
        let p = blocked(4);
        let pf = Platform::embedded_default(1024);
        let with_te = Mhla::new(&p, &pf, MhlaConfig::default());
        let model = with_te.cost_model();
        let r1 = with_te.run();
        let rep1 = Simulator::new(&model, &r1.assignment, &r1.te).run();

        let no_te_cfg = MhlaConfig {
            disable_te: true,
            ..MhlaConfig::default()
        };
        let no_te = Mhla::new(&p, &pf, no_te_cfg);
        let model2 = no_te.cost_model();
        let r2 = no_te.run();
        let rep2 = Simulator::new(&model2, &r2.assignment, &r2.te).run();

        assert_eq!(r1.assignment, r2.assignment, "same step-1 outcome");
        assert!(
            (rep1.total_energy_pj() - rep2.total_energy_pj()).abs() < 1e-6,
            "TE must not change energy (paper §3)"
        );
        assert!(rep1.total_cycles() <= rep2.total_cycles());
    }

    #[test]
    fn sim_energy_matches_static_estimate() {
        let p = blocked(2);
        let pf = Platform::embedded_default(1024);
        let mhla = Mhla::new(&p, &pf, MhlaConfig::default());
        let model = mhla.cost_model();
        let result = mhla.run();
        let report = Simulator::new(&model, &result.assignment, &result.te).run();
        let static_e = result.assignment_cost.total_energy_pj();
        assert!(
            (report.total_energy_pj() - static_e).abs() / static_e < 1e-9,
            "sim {} vs static {static_e}",
            report.total_energy_pj()
        );
    }

    #[test]
    fn streaming_without_reuse_is_not_staged_when_dma_is_absent() {
        // blocked(4) has reuse factor 1: staging only pays through DMA
        // burst amortization. Without an engine the CPU-copy overhead makes
        // staging a strict loss, and greedy must stay at the baseline.
        let p = blocked(4);
        let pf = Platform::without_dma(1024);
        let mhla = Mhla::new(&p, &pf, MhlaConfig::default());
        let model = mhla.cost_model();
        let result = mhla.run();
        assert!(result.assignment.copies().is_empty(), "no profitable copy");
        let report = Simulator::new(&model, &result.assignment, &result.te).run();
        assert!(!result.te.applicable);
        assert_eq!(report.dma_busy_cycles, 0);
        assert_eq!(report.total_cycles(), result.baseline_cycles());
    }

    #[test]
    fn cpu_copies_pay_off_with_real_reuse_without_dma() {
        // Each 64-B tile is scanned 8 times: even CPU-performed copies win.
        let mut b = ProgramBuilder::new("reused");
        let data = b.array("data", &[2048], ElemType::U8);
        let lb = b.begin_loop("blk", 0, 32, 1);
        let lr = b.begin_loop("rep", 0, 8, 1);
        let li = b.begin_loop("i", 0, 64, 1);
        let (blk, i) = (b.var(lb), b.var(li));
        b.stmt("use")
            .read(data, vec![blk * 64 + i])
            .compute_cycles(2)
            .finish();
        b.end_loop();
        b.end_loop();
        b.end_loop();
        let _ = (lb, lr);
        let p = b.finish();
        let pf = Platform::without_dma(1024);
        let mhla = Mhla::new(&p, &pf, MhlaConfig::default());
        let model = mhla.cost_model();
        let result = mhla.run();
        assert!(!result.assignment.copies().is_empty(), "tile staged");
        let report = Simulator::new(&model, &result.assignment, &result.te).run();
        assert!(!result.te.applicable);
        assert_eq!(report.dma_busy_cycles, 0);
        // Still beats the all-off-chip baseline.
        assert!(report.total_cycles() < result.baseline_cycles());
    }

    #[test]
    fn whole_array_fill_overlaps_startup() {
        // Table used in a second nest; fill issued at t=0 overlaps the
        // first nest's compute.
        let mut b = ProgramBuilder::new("p");
        let work = b.array("work", &[512], ElemType::U8);
        let tab = b.array("tab", &[256], ElemType::U8);
        b.loop_scope("w", 0, 512, 1, |b, lw| {
            let w = b.var(lw);
            b.stmt("warm")
                .read(work, vec![w])
                .compute_cycles(4)
                .finish();
        });
        b.loop_scope("rep", 0, 64, 1, |b, _| {
            b.loop_scope("i", 0, 256, 1, |b, li| {
                let i = b.var(li);
                b.stmt("use").read(tab, vec![i]).finish();
            });
        });
        let p = b.finish();
        let pf = Platform::embedded_default(512);
        let mhla = Mhla::new(&p, &pf, MhlaConfig::default());
        let model = mhla.cost_model();
        let result = mhla.run();
        // The whole-array candidate for tab should be staged.
        assert!(result
            .assignment
            .copies()
            .iter()
            .any(|c| c.candidate.array == tab));
        let report = Simulator::new(&model, &result.assignment, &result.te).run();
        // `work` may legitimately be staged too (in-place lets it share the
        // scratchpad with `tab`, their lifetimes being disjoint); its own
        // fill stalls at t=0 because nothing precedes it. The point of this
        // test: `tab`'s 276-cycle fill rides behind the first nest and adds
        // no stall beyond that unavoidable startup fill.
        let dma = pf.dma().unwrap();
        let work_fill = dma.transfer_cycles(512, pf.layer(LayerId(0)), pf.layer(LayerId(1)));
        assert!(
            report.stall_cycles <= work_fill,
            "stall {} exceeds the startup fill {work_fill}",
            report.stall_cycles
        );
        assert!(report.total_cycles() < result.baseline_cycles());
    }
}
