//! Property-based tests for the IR crate: affine-expression algebra,
//! range/width exactness against brute-force enumeration, and timeline
//! consistency on randomly generated loop nests.

use mhla_ir::{AffineExpr, ElemType, LoopId, NodeId, ProgramBuilder};
use proptest::prelude::*;

fn lid(i: usize) -> LoopId {
    LoopId::from_index(i)
}

/// Strategy: an affine expression over up to 4 iterators with small
/// coefficients, paired with concrete (min, max) ranges for each iterator.
fn expr_and_ranges() -> impl Strategy<Value = (AffineExpr, Vec<(i64, i64)>)> {
    let coeffs = prop::collection::vec(-5i64..=5, 4);
    let constant = -20i64..=20;
    let ranges = prop::collection::vec((-6i64..=6, 0i64..=6), 4);
    (coeffs, constant, ranges).prop_map(|(cs, k, rs)| {
        let mut e = AffineExpr::constant_expr(k);
        for (i, c) in cs.iter().enumerate() {
            e = e + AffineExpr::scaled_var(lid(i), *c);
        }
        let ranges = rs.iter().map(|(lo, len)| (*lo, lo + len)).collect();
        (e, ranges)
    })
}

proptest! {
    /// `value_range` is exact: matches brute-force enumeration of all
    /// iterator valuations.
    #[test]
    fn value_range_matches_enumeration((e, ranges) in expr_and_ranges()) {
        let (lo, hi) = e.value_range(|l| ranges.get(l.index()).copied());
        let mut seen_lo = i64::MAX;
        let mut seen_hi = i64::MIN;
        for v0 in ranges[0].0..=ranges[0].1 {
            for v1 in ranges[1].0..=ranges[1].1 {
                for v2 in ranges[2].0..=ranges[2].1 {
                    for v3 in ranges[3].0..=ranges[3].1 {
                        let vals = [v0, v1, v2, v3];
                        let v = e.eval(|l| vals[l.index()]);
                        seen_lo = seen_lo.min(v);
                        seen_hi = seen_hi.max(v);
                    }
                }
            }
        }
        prop_assert_eq!(lo, seen_lo);
        prop_assert_eq!(hi, seen_hi);
    }

    /// Width over free iterators equals the enumerated footprint width and
    /// is independent of the fixed iterators' values.
    #[test]
    fn width_matches_enumeration(
        (e, ranges) in expr_and_ranges(),
        fixed2 in -4i64..=4,
        fixed3 in -4i64..=4,
    ) {
        // Iterators 0,1 free; 2,3 fixed.
        let w = e.width_over(|l| {
            let i = l.index();
            (i < 2).then(|| ranges[i].1 - ranges[i].0)
        });
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for v0 in ranges[0].0..=ranges[0].1 {
            for v1 in ranges[1].0..=ranges[1].1 {
                let vals = [v0, v1, fixed2, fixed3];
                let v = e.eval(|l| vals[l.index()]);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        prop_assert_eq!(w, hi - lo + 1);
    }

    /// Algebra: (a + b) - b == a for arbitrary expressions.
    #[test]
    fn add_sub_round_trip((a, _) in expr_and_ranges(), (b, _) in expr_and_ranges()) {
        let r = (a.clone() + b.clone()) - b;
        prop_assert_eq!(r, a);
    }

    /// eval is linear: eval(a*k) == k*eval(a).
    #[test]
    fn eval_is_linear((a, ranges) in expr_and_ranges(), k in -4i64..=4) {
        let at = |l: LoopId| ranges[l.index()].0;
        prop_assert_eq!((a.clone() * k).eval(at), k * a.eval(at));
    }

    /// substitute(l, v) agrees with eval when the remaining iterators are
    /// evaluated identically.
    #[test]
    fn substitute_agrees_with_eval((a, ranges) in expr_and_ranges(), v in -4i64..=4) {
        let s = a.substitute(lid(0), v);
        let env = |l: LoopId| if l.index() == 0 { v } else { ranges[l.index()].1 };
        prop_assert_eq!(s.eval(env), a.eval(env));
    }
}

/// Strategy: shape of a random loop nest — a sequence of (depth-delta, trips)
/// instructions interpreted by a builder walk.
fn nest_shape() -> impl Strategy<Value = Vec<(i8, u8)>> {
    prop::collection::vec((-1i8..=1, 1u8..=4), 1..12)
}

proptest! {
    /// On arbitrary nests: total timeline ticks equal the total number of
    /// statement executions, and every node span nests within its parent's.
    #[test]
    fn timeline_is_consistent(shape in nest_shape()) {
        let mut b = ProgramBuilder::new("random");
        let a = b.array("a", &[1024], ElemType::U8);
        let mut loop_count = 0usize;
        let mut stmt_in_current_scope = false;
        for (delta, trips) in &shape {
            match delta {
                1 if b.open_depth() < 5 => {
                    b.begin_loop(format!("l{loop_count}"), 0, *trips as i64, 1);
                    loop_count += 1;
                    stmt_in_current_scope = false;
                }
                -1 if b.open_depth() > 0 => {
                    if !stmt_in_current_scope {
                        // ensure no empty loop bodies (they are legal but
                        // make the "every loop reachable" invariant vacuous)
                        b.stmt("pad").read(a, vec![AffineExpr::zero()]).finish();
                    }
                    b.end_loop();
                    stmt_in_current_scope = true;
                }
                _ => {
                    b.stmt("s").read(a, vec![AffineExpr::zero()]).finish();
                    stmt_in_current_scope = true;
                }
            }
        }
        while b.open_depth() > 0 {
            if !stmt_in_current_scope {
                b.stmt("pad").read(a, vec![AffineExpr::zero()]).finish();
            }
            b.end_loop();
            stmt_in_current_scope = true;
        }
        if loop_count == 0 && !stmt_in_current_scope {
            b.stmt("s").read(a, vec![AffineExpr::zero()]).finish();
        }
        let p = b.finish();
        prop_assert!(p.validate().is_ok());

        let info = p.info();
        let tl = p.timeline();
        let total_exec: u64 = p.stmts().map(|(s, _)| info.stmt_executions(s)).sum();
        prop_assert_eq!(tl.total_ticks(), total_exec);

        // Span nesting: each node's span lies within its parent loop's span.
        p.walk(|n, _| {
            if let Some(parent) = info.parent(n) {
                let ps = tl.loop_span(parent);
                let ns = tl.node_span(n);
                assert!(ps.start <= ns.start && ns.end <= ps.end,
                    "child span {ns} escapes parent span {ps}");
            }
        });

        // Executions of a statement equal the product of enclosing trip counts.
        for (s, _) in p.stmts() {
            let prod: u64 = info
                .enclosing_loops(NodeId::Stmt(s))
                .iter()
                .map(|&l| p.loop_(l).trip_count())
                .product();
            prop_assert_eq!(info.stmt_executions(s), prod);
        }
    }
}
