//! # mhla-ir — loop-nest intermediate representation
//!
//! The MHLA technique (Memory Hierarchical Layer Assignment, DATE 2003/2005)
//! reasons about *geometric* program information only: which arrays exist,
//! which loop nests access them, with which affine index expressions, and how
//! often. This crate provides exactly that information as an explicit,
//! self-contained intermediate representation:
//!
//! * [`AffineExpr`] — affine functions of loop iterators used as array
//!   subscripts,
//! * [`Program`] — an arena-based tree of [`Loop`]s and [`Statement`]s over a
//!   set of [`ArrayDecl`]s,
//! * [`ProgramBuilder`] — an ergonomic way to construct programs,
//! * [`ProgramInfo`] — derived structural facts (parents, depths, trip
//!   counts, execution counts, access counts),
//! * [`Timeline`] — a sequentialized logical timeline used by lifetime
//!   analysis and in-place optimization,
//! * [`Program::validate`] — structural well-formedness checking,
//! * [`serdes`] — the versioned on-disk JSON format (programs as data),
//!   validated on ingress so external files fail with typed errors.
//!
//! # Example
//!
//! A 2-D sum-of-absolute-differences kernel (the inner loop of motion
//! estimation):
//!
//! ```
//! use mhla_ir::{ProgramBuilder, ElemType, AccessKind};
//!
//! let mut b = ProgramBuilder::new("sad");
//! let cur = b.array("cur", &[16, 16], ElemType::U8);
//! let ref_ = b.array("ref", &[32, 32], ElemType::U8);
//! let y = b.begin_loop("y", 0, 16, 1);
//! let x = b.begin_loop("x", 0, 16, 1);
//! let (iy, ix) = (b.var(y), b.var(x));
//! b.stmt("acc")
//!     .read(cur, vec![iy.clone(), ix.clone()])
//!     .read(ref_, vec![iy + 8, ix + 8])
//!     .compute_cycles(2)
//!     .finish();
//! b.end_loop();
//! b.end_loop();
//! let program = b.finish();
//!
//! let info = program.info();
//! assert_eq!(info.access_count(cur, AccessKind::Read), 256);
//! assert_eq!(info.access_count(ref_, AccessKind::Read), 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// This crate is the ingress for serialized (potentially hostile) programs:
// every reachable failure must surface as a typed [`SerdesError`] /
// [`ValidateError`], never a panic. Surviving `expect`s are in-process
// builder-misuse contracts, each carrying an explicit `#[allow]` +
// justification.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod analysis;
#[cfg(feature = "arbitrary")]
pub mod arbitrary;
mod builder;
mod display;
mod expr;
mod ids;
mod program;
pub mod serdes;
mod timeline;
mod validate;

pub use analysis::{AccessCounts, ProgramInfo};
pub use builder::{ProgramBuilder, StmtBuilder};
pub use expr::AffineExpr;
pub use ids::{ArrayId, LoopId, NodeId, StmtId};
pub use program::{Access, AccessKind, ArrayDecl, ElemType, Loop, Node, Program, Statement};
pub use serdes::SerdesError;
pub use timeline::{TimeInterval, Timeline};
pub use validate::ValidateError;
