//! Sequential logical timeline of a program.
//!
//! Lifetime analysis and in-place optimization need a total order of all
//! dynamic statement instances. The [`Timeline`] assigns every node a
//! half-open interval on a *logical clock* that advances by one tick per
//! statement execution. Logical ticks are not cycles — they order events
//! without depending on the (assignment-dependent) memory latencies.

use std::fmt;

use crate::ids::{ArrayId, LoopId, NodeId, StmtId};
use crate::program::Program;

/// Half-open interval `[start, end)` on the logical clock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimeInterval {
    /// First tick covered.
    pub start: u64,
    /// First tick *not* covered.
    pub end: u64,
}

impl TimeInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "interval start {start} > end {end}");
        Self { start, end }
    }

    /// Interval length in ticks.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the interval covers no ticks.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether two intervals share at least one tick.
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Grows the interval to start earlier by `ticks`, saturating at zero.
    pub fn extended_earlier(&self, ticks: u64) -> TimeInterval {
        TimeInterval {
            start: self.start.saturating_sub(ticks),
            end: self.end,
        }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Logical-clock intervals for every node of a program.
///
/// Obtained from [`Program::timeline`].
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Duration of ONE dynamic instance of each loop.
    loop_duration: Vec<u64>,
    /// Span from first instance start to last instance end.
    loop_span: Vec<TimeInterval>,
    stmt_span: Vec<TimeInterval>,
    total: u64,
    array_span: Vec<Option<TimeInterval>>,
}

impl Timeline {
    pub(crate) fn new(program: &Program) -> Self {
        let mut tl = Timeline {
            loop_duration: vec![0; program.loop_count()],
            loop_span: vec![TimeInterval::new(0, 0); program.loop_count()],
            stmt_span: vec![TimeInterval::new(0, 0); program.stmt_count()],
            total: 0,
            array_span: vec![None; program.array_count()],
        };
        // Pass 1: instance durations bottom-up.
        fn duration(p: &Program, tl: &mut Timeline, node: NodeId) -> u64 {
            match node {
                NodeId::Stmt(_) => 1,
                NodeId::Loop(l) => {
                    let body: u64 = p.loop_(l).body.iter().map(|&n| duration(p, tl, n)).sum();
                    let d = p.loop_(l).trip_count() * body;
                    tl.loop_duration[l.index()] = d;
                    d
                }
            }
        }
        let mut offset = 0;
        let roots = program.roots().to_vec();
        for &r in &roots {
            offset += duration(program, &mut tl, r);
        }
        tl.total = offset;

        // Pass 2: spans top-down. `first` / `last` are the start times of the
        // first and last dynamic instance of the current sequence position.
        fn spans(p: &Program, tl: &mut Timeline, nodes: &[NodeId], first: u64, last: u64) {
            let mut off = 0;
            for &n in nodes {
                let (dur, node_first, node_last) = match n {
                    NodeId::Stmt(s) => {
                        let f = first + off;
                        let l = last + off;
                        tl.stmt_span[s.index()] = TimeInterval::new(f, l + 1);
                        (1, f, l)
                    }
                    NodeId::Loop(l) => {
                        let d = tl.loop_duration[l.index()];
                        let f = first + off;
                        let la = last + off;
                        tl.loop_span[l.index()] = TimeInterval::new(f, la + d);
                        let trips = p.loop_(l).trip_count();
                        if let Some(body_dur) = d.checked_div(trips) {
                            let body = p.loop_(l).body.clone();
                            spans(p, tl, &body, f, la + (trips - 1) * body_dur);
                        }
                        (d, f, la)
                    }
                };
                let _ = (node_first, node_last);
                off += dur;
            }
        }
        spans(program, &mut tl, &roots, 0, 0);

        // Array spans: hull over accessing statements.
        for (sid, stmt) in program.stmts() {
            let span = tl.stmt_span[sid.index()];
            for acc in &stmt.accesses {
                let slot = &mut tl.array_span[acc.array.index()];
                *slot = Some(match slot {
                    Some(cur) => cur.hull(&span),
                    None => span,
                });
            }
        }
        tl
    }

    /// Total logical duration of one program execution.
    pub fn total_ticks(&self) -> u64 {
        self.total
    }

    /// Duration of ONE dynamic instance of the loop (all its iterations).
    pub fn loop_instance_ticks(&self, l: LoopId) -> u64 {
        self.loop_duration[l.index()]
    }

    /// Span from the loop's first instance start to its last instance end.
    pub fn loop_span(&self, l: LoopId) -> TimeInterval {
        self.loop_span[l.index()]
    }

    /// Span from a statement's first execution to its last.
    pub fn stmt_span(&self, s: StmtId) -> TimeInterval {
        self.stmt_span[s.index()]
    }

    /// Span of a node.
    pub fn node_span(&self, n: NodeId) -> TimeInterval {
        match n {
            NodeId::Loop(l) => self.loop_span(l),
            NodeId::Stmt(s) => self.stmt_span(s),
        }
    }

    /// Hull of the spans of all statements accessing the array, or `None`
    /// when the array is never accessed.
    pub fn array_span(&self, a: ArrayId) -> Option<TimeInterval> {
        self.array_span[a.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::program::ElemType;

    #[test]
    fn interval_basics() {
        let a = TimeInterval::new(2, 5);
        let b = TimeInterval::new(5, 7);
        let c = TimeInterval::new(4, 6);
        assert_eq!(a.len(), 3);
        assert!(!a.overlaps(&b), "half-open: touching is not overlap");
        assert!(a.overlaps(&c));
        assert_eq!(a.hull(&b), TimeInterval::new(2, 7));
        assert_eq!(a.extended_earlier(10), TimeInterval::new(0, 5));
        assert!(TimeInterval::new(3, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "start")]
    fn interval_rejects_inverted_bounds() {
        let _ = TimeInterval::new(5, 2);
    }

    /// ```text
    /// for i in 0..2:       // L0
    ///   S0
    ///   for j in 0..3:     // L1
    ///     S1
    /// S2
    /// ```
    /// Ticks: i=0: S0@0, S1@1,2,3 ; i=1: S0@4, S1@5,6,7 ; S2@8.
    #[test]
    fn spans_of_nested_program() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[8], ElemType::U8);
        let li = b.begin_loop("i", 0, 2, 1);
        let iv = b.var(li);
        let s0 = b.stmt("s0").read(a, vec![iv.clone()]).finish();
        let lj = b.begin_loop("j", 0, 3, 1);
        let s1 = b.stmt("s1").read(a, vec![iv]).finish();
        b.end_loop();
        b.end_loop();
        let s2 = b
            .stmt("s2")
            .read(a, vec![crate::AffineExpr::zero()])
            .finish();
        let p = b.finish();
        let tl = p.timeline();

        assert_eq!(tl.total_ticks(), 9);
        assert_eq!(tl.loop_instance_ticks(li), 8);
        assert_eq!(tl.loop_instance_ticks(lj), 3);
        assert_eq!(tl.loop_span(li), TimeInterval::new(0, 8));
        // First j-loop instance starts at tick 1; last ends at tick 8.
        assert_eq!(tl.loop_span(lj), TimeInterval::new(1, 8));
        assert_eq!(tl.stmt_span(s0), TimeInterval::new(0, 5));
        assert_eq!(tl.stmt_span(s1), TimeInterval::new(1, 8));
        assert_eq!(tl.stmt_span(s2), TimeInterval::new(8, 9));
        assert_eq!(tl.array_span(a), Some(TimeInterval::new(0, 9)));
    }

    #[test]
    fn unaccessed_array_has_no_span() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[8], ElemType::U8);
        let unused = b.array("unused", &[8], ElemType::U8);
        b.loop_scope("i", 0, 2, 1, |b, li| {
            let iv = b.var(li);
            b.stmt("s").read(a, vec![iv]).finish();
        });
        let p = b.finish();
        let tl = p.timeline();
        assert!(tl.array_span(a).is_some());
        assert_eq!(tl.array_span(unused), None);
    }

    #[test]
    fn sequential_loops_do_not_overlap() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[8], ElemType::U8);
        let l0 = b.loop_scope("i", 0, 4, 1, |b, li| {
            let iv = b.var(li);
            b.stmt("s0").write(a, vec![iv]).finish();
            li
        });
        let l1 = b.loop_scope("j", 0, 4, 1, |b, lj| {
            let jv = b.var(lj);
            b.stmt("s1").read(a, vec![jv]).finish();
            lj
        });
        let p = b.finish();
        let tl = p.timeline();
        assert_eq!(tl.loop_span(l0), TimeInterval::new(0, 4));
        assert_eq!(tl.loop_span(l1), TimeInterval::new(4, 8));
        assert!(!tl.loop_span(l0).overlaps(&tl.loop_span(l1)));
    }
}
