//! Typed arena indices for the program representation.
//!
//! Every entity of a [`Program`](crate::Program) lives in an arena and is
//! referred to by a small copyable id. Newtypes keep the different index
//! spaces apart at compile time ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! arena_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw arena index.
            ///
            /// Only meaningful for indices handed out by the owning
            /// [`Program`](crate::Program); mainly useful for serialization
            /// layers and tests.
            pub fn from_index(index: usize) -> Self {
                Self(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

arena_id!(
    /// Identifies an [`ArrayDecl`](crate::ArrayDecl) within a program.
    ArrayId,
    "A"
);
arena_id!(
    /// Identifies a [`Loop`](crate::Loop) within a program.
    ///
    /// A `LoopId` doubles as the loop's *iterator variable* inside
    /// [`AffineExpr`](crate::AffineExpr) index expressions.
    LoopId,
    "L"
);
arena_id!(
    /// Identifies a [`Statement`](crate::Statement) within a program.
    StmtId,
    "S"
);

/// A node of the program tree: either a loop or a statement.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeId {
    /// A loop node.
    Loop(LoopId),
    /// A statement node.
    Stmt(StmtId),
}

impl NodeId {
    /// Returns the loop id if this node is a loop.
    pub fn as_loop(self) -> Option<LoopId> {
        match self {
            NodeId::Loop(l) => Some(l),
            NodeId::Stmt(_) => None,
        }
    }

    /// Returns the statement id if this node is a statement.
    pub fn as_stmt(self) -> Option<StmtId> {
        match self {
            NodeId::Loop(_) => None,
            NodeId::Stmt(s) => Some(s),
        }
    }
}

impl From<LoopId> for NodeId {
    fn from(value: LoopId) -> Self {
        NodeId::Loop(value)
    }
}

impl From<StmtId> for NodeId {
    fn from(value: StmtId) -> Self {
        NodeId::Stmt(value)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Loop(l) => write!(f, "{l}"),
            NodeId::Stmt(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_raw_indices() {
        let a = ArrayId::from_index(7);
        assert_eq!(a.index(), 7);
        let l = LoopId::from_index(3);
        assert_eq!(l.index(), 3);
        let s = StmtId::from_index(11);
        assert_eq!(s.index(), 11);
    }

    #[test]
    fn display_uses_kind_prefix() {
        assert_eq!(ArrayId::from_index(1).to_string(), "A1");
        assert_eq!(LoopId::from_index(2).to_string(), "L2");
        assert_eq!(StmtId::from_index(3).to_string(), "S3");
        assert_eq!(NodeId::from(LoopId::from_index(2)).to_string(), "L2");
    }

    #[test]
    fn node_id_projections() {
        let l: NodeId = LoopId::from_index(0).into();
        assert_eq!(l.as_loop(), Some(LoopId::from_index(0)));
        assert_eq!(l.as_stmt(), None);
        let s: NodeId = StmtId::from_index(0).into();
        assert_eq!(s.as_stmt(), Some(StmtId::from_index(0)));
        assert_eq!(s.as_loop(), None);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(LoopId::from_index(1) < LoopId::from_index(2));
    }
}
