//! Fluent construction of [`Program`]s.

use crate::expr::AffineExpr;
use crate::ids::{ArrayId, LoopId, NodeId, StmtId};
use crate::program::{Access, AccessKind, ArrayDecl, ElemType, Loop, Program, Statement};

/// Incremental builder for [`Program`].
///
/// Loops are opened with [`begin_loop`](Self::begin_loop) and closed with
/// [`end_loop`](Self::end_loop); statements are added to the innermost open
/// loop (or the program root). [`finish`](Self::finish) validates the result.
///
/// # Example
///
/// ```
/// use mhla_ir::{ProgramBuilder, ElemType};
///
/// let mut b = ProgramBuilder::new("copy");
/// let src = b.array("src", &[64], ElemType::U8);
/// let dst = b.array("dst", &[64], ElemType::U8);
/// let i = b.begin_loop("i", 0, 64, 1);
/// let iv = b.var(i);
/// b.stmt("mv").read(src, vec![iv.clone()]).write(dst, vec![iv]).finish();
/// b.end_loop();
/// let p = b.finish();
/// assert_eq!(p.loop_count(), 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    loops: Vec<Loop>,
    stmts: Vec<Statement>,
    roots: Vec<NodeId>,
    open: Vec<LoopId>,
}

impl ProgramBuilder {
    /// Starts building a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            arrays: Vec::new(),
            loops: Vec::new(),
            stmts: Vec::new(),
            roots: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Declares an array and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a zero extent.
    pub fn array(&mut self, name: impl Into<String>, dims: &[u64], elem: ElemType) -> ArrayId {
        assert!(!dims.is_empty(), "array must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "array dimensions must be positive"
        );
        let id = ArrayId::from_index(self.arrays.len());
        self.arrays.push(ArrayDecl {
            name: name.into(),
            dims: dims.to_vec(),
            elem,
        });
        id
    }

    /// Opens a loop `for name in (lower..upper).step_by(step)` and returns
    /// its id, which also names the iterator.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn begin_loop(
        &mut self,
        name: impl Into<String>,
        lower: i64,
        upper: i64,
        step: i64,
    ) -> LoopId {
        assert!(step > 0, "loop step must be positive");
        let id = LoopId::from_index(self.loops.len());
        self.loops.push(Loop {
            name: name.into(),
            lower,
            upper,
            step,
            body: Vec::new(),
        });
        self.attach(NodeId::Loop(id));
        self.open.push(id);
        id
    }

    /// Closes the innermost open loop.
    ///
    /// # Panics
    ///
    /// Panics if no loop is open.
    pub fn end_loop(&mut self) {
        // Invariant: the builder is an in-process construction API; an
        // unbalanced end_loop is a caller bug at the call site, documented
        // as a panic above. Serialized ingress never passes through the
        // builder (`serdes` assembles `Program` directly and validates).
        #[allow(clippy::expect_used)]
        self.open
            .pop()
            .expect("end_loop without matching begin_loop");
    }

    /// Convenience: opens a loop, runs `body`, closes the loop.
    pub fn loop_scope<R>(
        &mut self,
        name: impl Into<String>,
        lower: i64,
        upper: i64,
        step: i64,
        body: impl FnOnce(&mut Self, LoopId) -> R,
    ) -> R {
        let id = self.begin_loop(name, lower, upper, step);
        let r = body(self, id);
        self.end_loop();
        r
    }

    /// The iterator of `loop_id` as an affine expression.
    pub fn var(&self, loop_id: LoopId) -> AffineExpr {
        AffineExpr::var(loop_id)
    }

    /// Starts a statement in the innermost open loop (or at the root).
    pub fn stmt(&mut self, name: impl Into<String>) -> StmtBuilder<'_> {
        StmtBuilder {
            builder: self,
            stmt: Statement {
                name: name.into(),
                accesses: Vec::new(),
                compute_cycles: 1,
            },
        }
    }

    /// Number of loops currently open (nesting depth of the insert point).
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if loops are still open or the program fails
    /// [`Program::validate`] — both indicate construction bugs in the
    /// caller, not runtime conditions.
    pub fn finish(self) -> Program {
        match self.try_finish() {
            Ok(program) => program,
            Err(e) => panic!("builder produced invalid program: {e}"),
        }
    }

    /// Fallible [`finish`](Self::finish): returns the validation failure
    /// as a typed [`ValidateError`](crate::ValidateError) instead of panicking — for builders
    /// driven by external input (parsers, generators) where a malformed
    /// program is a data condition, not a bug.
    ///
    /// # Errors
    ///
    /// The first [`ValidateError`](crate::ValidateError) of [`Program::validate`].
    ///
    /// # Panics
    ///
    /// Still panics on unclosed loops: an unbalanced
    /// [`begin_loop`](Self::begin_loop)/[`end_loop`](Self::end_loop)
    /// sequence is a construction bug in the calling code.
    pub fn try_finish(self) -> Result<Program, crate::ValidateError> {
        assert!(
            self.open.is_empty(),
            "finish() with {} unclosed loop(s)",
            self.open.len()
        );
        let program = Program {
            name: self.name,
            arrays: self.arrays,
            loops: self.loops,
            stmts: self.stmts,
            roots: self.roots,
        };
        program.validate()?;
        Ok(program)
    }

    fn attach(&mut self, node: NodeId) {
        match self.open.last() {
            Some(&l) => self.loops[l.index()].body.push(node),
            None => self.roots.push(node),
        }
    }
}

/// Builder for one [`Statement`]; returned by [`ProgramBuilder::stmt`].
///
/// Call [`finish`](Self::finish) to attach the statement; dropping the
/// builder without finishing discards the statement.
#[derive(Debug)]
#[must_use = "call .finish() to attach the statement"]
pub struct StmtBuilder<'b> {
    builder: &'b mut ProgramBuilder,
    stmt: Statement,
}

impl<'b> StmtBuilder<'b> {
    /// Adds a read access.
    pub fn read(mut self, array: ArrayId, index: Vec<AffineExpr>) -> Self {
        self.stmt.accesses.push(Access {
            array,
            kind: AccessKind::Read,
            index,
        });
        self
    }

    /// Adds a write access.
    pub fn write(mut self, array: ArrayId, index: Vec<AffineExpr>) -> Self {
        self.stmt.accesses.push(Access {
            array,
            kind: AccessKind::Write,
            index,
        });
        self
    }

    /// Sets the pure datapath cycles per execution (default 1).
    pub fn compute_cycles(mut self, cycles: u64) -> Self {
        self.stmt.compute_cycles = cycles;
        self
    }

    /// Attaches the statement and returns its id.
    pub fn finish(self) -> StmtId {
        let id = StmtId::from_index(self.builder.stmts.len());
        self.builder.stmts.push(self.stmt);
        self.builder.attach(NodeId::Stmt(id));
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[16, 16], ElemType::I16);
        let li = b.begin_loop("i", 0, 16, 1);
        let lj = b.begin_loop("j", 0, 16, 1);
        let (i, j) = (b.var(li), b.var(lj));
        let s = b.stmt("t").read(a, vec![i, j]).compute_cycles(3).finish();
        b.end_loop();
        b.end_loop();
        let p = b.finish();
        assert_eq!(p.roots(), &[NodeId::Loop(li)]);
        assert_eq!(p.loop_(li).body, vec![NodeId::Loop(lj)]);
        assert_eq!(p.loop_(lj).body, vec![NodeId::Stmt(s)]);
        assert_eq!(p.stmt(s).compute_cycles, 3);
        assert_eq!(p.stmt(s).accesses.len(), 1);
    }

    #[test]
    fn loop_scope_closes_automatically() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[4], ElemType::U8);
        b.loop_scope("i", 0, 4, 1, |b, li| {
            let i = b.var(li);
            b.stmt("s").read(a, vec![i]).finish();
        });
        assert_eq!(b.open_depth(), 0);
        let p = b.finish();
        assert_eq!(p.loop_count(), 1);
        assert_eq!(p.stmt_count(), 1);
    }

    #[test]
    #[should_panic(expected = "unclosed loop")]
    fn finish_rejects_open_loops() {
        let mut b = ProgramBuilder::new("p");
        b.begin_loop("i", 0, 4, 1);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "end_loop without matching")]
    fn end_loop_requires_open_loop() {
        let mut b = ProgramBuilder::new("p");
        b.end_loop();
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rejects_nonpositive_step() {
        let mut b = ProgramBuilder::new("p");
        b.begin_loop("i", 0, 4, 0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_dims() {
        let mut b = ProgramBuilder::new("p");
        b.array("a", &[4, 0], ElemType::U8);
    }

    #[test]
    fn statements_at_root_are_allowed() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[1], ElemType::U8);
        let s = b.stmt("init").write(a, vec![AffineExpr::zero()]).finish();
        let p = b.finish();
        assert_eq!(p.roots(), &[NodeId::Stmt(s)]);
    }
}
