//! Versioned on-disk JSON format for [`Program`] — programs as data.
//!
//! Everything upstream of this module holds a `Program` that was built in
//! process by [`ProgramBuilder`](crate::ProgramBuilder) and is therefore
//! structurally sound by construction. This module is the *ingress* for
//! programs that were **not** built in process: files written by `mhla
//! export`, by other tools, or by hand. Three rules follow:
//!
//! 1. **Versioned.** Every document carries an explicit `"format"` tag and a
//!    `"version"` number. Readers reject anything they were not built for
//!    with a typed error ([`SerdesError::Version`]) instead of guessing.
//! 2. **Stable ids.** Arrays, loops and statements are arena entities; the
//!    document spells their arena index out as an explicit `"id"` field and
//!    the reader checks it against the entity's position, so a hand-edited
//!    file whose references silently shifted fails loudly.
//! 3. **Validated.** [`program_from_json`] routes every accepted document
//!    through [`Program::validate`], so a file that parses but describes a
//!    malformed program (dangling node, rank mismatch, rogue iterator, …)
//!    is rejected with the same [`ValidateError`] the builder would raise —
//!    never a panic deeper in the analyses.
//!
//! The JSON layer itself ([`Json`]) is deliberately minimal and hand-rolled:
//! the build is fully offline (no serde in the dependency tree) and the
//! schema is small enough that an explicit parser is simpler than a derive.
//! Numbers keep their raw source text so `u64` capacities above 2^53 and
//! shortest-round-trip `f64` energies survive unchanged.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "format": "mhla.program",
//!   "version": 1,
//!   "name": "sad",
//!   "arrays": [{"id": 0, "name": "cur", "dims": [16, 16], "elem": "u8"}],
//!   "loops": [{"id": 0, "name": "y", "lower": 0, "upper": 16, "step": 1,
//!              "body": ["S0"]}],
//!   "stmts": [{"id": 0, "name": "acc", "compute_cycles": 2,
//!              "accesses": [{"array": 0, "kind": "read",
//!                            "index": [{"constant": 0, "terms": [[0, 1]]}]}]}],
//!   "roots": ["L0"]
//! }
//! ```
//!
//! Tree edges (`body`, `roots`) use the ids' display form (`"L0"`, `"S1"`);
//! affine subscripts are `{"constant": c, "terms": [[loop_id, coeff], …]}`.
//! Unknown object keys are ignored, so version-1 readers tolerate additive
//! extensions.

use std::fmt;

use crate::expr::AffineExpr;
use crate::ids::{ArrayId, LoopId, NodeId, StmtId};
use crate::program::{Access, AccessKind, ArrayDecl, ElemType, Loop, Program, Statement};
use crate::validate::ValidateError;

/// The `"format"` tag of a serialized [`Program`].
pub const PROGRAM_FORMAT: &str = "mhla.program";
/// The program schema version this build reads and writes.
pub const PROGRAM_VERSION: u64 = 1;

/// Maximum container nesting the parser accepts; deeper documents are
/// rejected (instead of overflowing the stack on e.g. ten thousand `[`s).
const MAX_DEPTH: usize = 128;

/// Typed failure of the serialization layer.
///
/// Everything a reader can object to maps onto one of four classes, from
/// outermost to innermost: the bytes are not JSON, the JSON is not the
/// expected document shape, the document is a version this build does not
/// read, or the decoded program fails [`Program::validate`].
#[derive(Clone, PartialEq, Debug)]
pub enum SerdesError {
    /// The input is not well-formed JSON.
    Syntax {
        /// Byte offset of the first offending character.
        offset: usize,
        /// What the parser expected or found.
        what: String,
    },
    /// The JSON is well-formed but does not match the document schema.
    Schema {
        /// Which field or value violated the schema, and how.
        what: String,
    },
    /// The document declares a schema version this build does not read.
    Version {
        /// Version found in the document.
        found: u64,
        /// Version this build supports.
        expected: u64,
    },
    /// The decoded program failed structural validation.
    Invalid(ValidateError),
}

impl fmt::Display for SerdesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerdesError::Syntax { offset, what } => {
                write!(f, "malformed JSON at byte {offset}: {what}")
            }
            SerdesError::Schema { what } => write!(f, "malformed document: {what}"),
            SerdesError::Version { found, expected } => write!(
                f,
                "unsupported schema version {found} (this build reads version {expected})"
            ),
            SerdesError::Invalid(e) => write!(f, "deserialized program failed validation: {e}"),
        }
    }
}

impl std::error::Error for SerdesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SerdesError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for SerdesError {
    fn from(value: ValidateError) -> Self {
        SerdesError::Invalid(value)
    }
}

// ---------------------------------------------------------------------------
// JSON value, parser and renderer
// ---------------------------------------------------------------------------

/// A parsed JSON value.
///
/// Numbers keep their raw source text ([`Json::Num`]) so integers outside
/// the `f64`-exact range and shortest-round-trip floats pass through the
/// format unchanged; typed accessors parse on demand.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw (validated) source text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as key/value pairs in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Encodes a `u64`.
    pub fn from_u64(value: u64) -> Json {
        Json::Num(value.to_string())
    }

    /// Encodes an `i64`.
    pub fn from_i64(value: i64) -> Json {
        Json::Num(value.to_string())
    }

    /// Encodes an `f64` via Rust's shortest round-trip display. JSON has no
    /// non-finite numbers, so NaN and ±infinity encode as `null` (which the
    /// typed reader then rejects with a schema error).
    pub fn from_f64(value: f64) -> Json {
        if value.is_finite() {
            Json::Num(value.to_string())
        } else {
            Json::Null
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`SerdesError::Syntax`] at the first offending byte; the parser never
    /// panics, whatever the input.
    pub fn parse(text: &str) -> Result<Json, SerdesError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Renders the value as pretty-printed JSON (2-space indent; arrays of
    /// scalars stay on one line). The output of [`Json::parse`] ∘ `render`
    /// is the identity on parsed values.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    /// Renders the value as compact single-line JSON — no whitespace at
    /// all, so the output frames cleanly as one line of a
    /// newline-delimited-JSON stream and is a *canonical* byte form:
    /// two structurally equal values render to identical bytes. This is
    /// the rendering behind [`program_canonical_bytes`] (content
    /// addressing) and the `mhla serve` wire protocol.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    fn is_scalar(&self) -> bool {
        !matches!(self, Json::Arr(_) | Json::Obj(_))
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) if items.iter().all(Json::is_scalar) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_into(out, indent);
                }
                out.push(']');
            }
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    // -- typed accessors (schema layer) ------------------------------------

    /// The value as an object's fields.
    ///
    /// # Errors
    ///
    /// [`SerdesError::Schema`] naming `what` when the value is not an object.
    pub fn as_object(&self, what: &str) -> Result<&[(String, Json)], SerdesError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(type_error(what, "an object", other)),
        }
    }

    /// The value as an array's items.
    ///
    /// # Errors
    ///
    /// [`SerdesError::Schema`] naming `what` when the value is not an array.
    pub fn as_array(&self, what: &str) -> Result<&[Json], SerdesError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(type_error(what, "an array", other)),
        }
    }

    /// The value as a string.
    ///
    /// # Errors
    ///
    /// [`SerdesError::Schema`] naming `what` when the value is not a string.
    pub fn as_str(&self, what: &str) -> Result<&str, SerdesError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(type_error(what, "a string", other)),
        }
    }

    /// The value as a `u64`.
    ///
    /// # Errors
    ///
    /// [`SerdesError::Schema`] naming `what` when the value is not an
    /// unsigned integer in range.
    pub fn as_u64(&self, what: &str) -> Result<u64, SerdesError> {
        if let Json::Num(s) = self {
            if let Ok(v) = s.parse::<u64>() {
                return Ok(v);
            }
        }
        Err(type_error(what, "an unsigned integer", self))
    }

    /// The value as an `i64`.
    ///
    /// # Errors
    ///
    /// [`SerdesError::Schema`] naming `what` when the value is not an
    /// integer in range.
    pub fn as_i64(&self, what: &str) -> Result<i64, SerdesError> {
        if let Json::Num(s) = self {
            if let Ok(v) = s.parse::<i64>() {
                return Ok(v);
            }
        }
        Err(type_error(what, "an integer", self))
    }

    /// The value as a finite `f64`.
    ///
    /// # Errors
    ///
    /// [`SerdesError::Schema`] naming `what` when the value is not a finite
    /// number (in particular for the `null` that [`Json::from_f64`] emits
    /// for non-finite inputs).
    pub fn as_f64(&self, what: &str) -> Result<f64, SerdesError> {
        if let Json::Num(s) = self {
            if let Ok(v) = s.parse::<f64>() {
                if v.is_finite() {
                    return Ok(v);
                }
            }
        }
        Err(type_error(what, "a finite number", self))
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "a boolean",
            Json::Num(_) => "a number",
            Json::Str(_) => "a string",
            Json::Arr(_) => "an array",
            Json::Obj(_) => "an object",
        }
    }
}

fn type_error(what: &str, expected: &str, found: &Json) -> SerdesError {
    SerdesError::Schema {
        what: format!("{what}: expected {expected}, found {}", found.kind_name()),
    }
}

/// Looks up a required object field.
///
/// # Errors
///
/// [`SerdesError::Schema`] naming `what` when `key` is absent.
pub fn field<'a>(
    fields: &'a [(String, Json)],
    key: &str,
    what: &str,
) -> Result<&'a Json, SerdesError> {
    opt_field(fields, key).ok_or_else(|| SerdesError::Schema {
        what: format!("{what}: missing field \"{key}\""),
    })
}

/// Looks up an optional object field (first occurrence wins).
pub fn opt_field<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Checks the document envelope: `"format"` must equal `format` and
/// `"version"` must equal `version`.
///
/// # Errors
///
/// [`SerdesError::Schema`] for a missing/mismatched format tag,
/// [`SerdesError::Version`] for a version this build does not read.
pub fn check_envelope(
    fields: &[(String, Json)],
    format: &str,
    version: u64,
) -> Result<(), SerdesError> {
    let found = field(fields, "format", "document")?.as_str("\"format\"")?;
    if found != format {
        return Err(SerdesError::Schema {
            what: format!("expected format \"{format}\", found \"{found}\""),
        });
    }
    let v = field(fields, "version", "document")?.as_u64("\"version\"")?;
    if v != version {
        return Err(SerdesError::Version {
            found: v,
            expected: version,
        });
    }
    Ok(())
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: impl Into<String>) -> SerdesError {
        SerdesError::Syntax {
            offset: self.pos,
            what: what.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), SerdesError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, SerdesError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected \"{text}\"")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, SerdesError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, SerdesError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, SerdesError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, SerdesError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain (non-escape, non-quote) bytes. The
            // input is a &str, so any multi-byte UTF-8 run is sound to copy.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                // Slicing on `pos` is safe: quotes/backslashes are ASCII, so
                // the scan above only stops on character boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), SerdesError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let high = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&high) {
                    // Surrogate pair: require an immediately following \uXXXX
                    // low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.err("expected low surrogate escape"))?;
                        let low = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&low) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00)
                    } else {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                } else {
                    high
                };
                match char::from_u32(code) {
                    Some(ch) => out.push(ch),
                    None => return Err(self.err("invalid unicode escape")),
                }
            }
            other => return Err(self.err(format!("invalid escape '\\{}'", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, SerdesError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, SerdesError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // `bytes[start..pos]` is all ASCII, so the unwrap-free conversion
        // below cannot fail; validate the token by parsing it as f64.
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if token.parse::<f64>().is_err() {
            self.pos = start;
            return Err(self.err(format!("invalid number \"{token}\"")));
        }
        Ok(Json::Num(token.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Program schema
// ---------------------------------------------------------------------------

/// Serializes a program to its version-[`PROGRAM_VERSION`] JSON document.
pub fn program_to_json(program: &Program) -> String {
    program_value(program).render()
}

/// Encodes a program as a [`Json`] value (the document [`program_to_json`]
/// renders). Useful for embedding a program inside a larger document.
pub fn program_value(program: &Program) -> Json {
    let arrays = program
        .arrays()
        .map(|(id, a)| {
            Json::Obj(vec![
                ("id".into(), Json::from_u64(id.index() as u64)),
                ("name".into(), Json::Str(a.name.clone())),
                (
                    "dims".into(),
                    Json::Arr(a.dims.iter().map(|&d| Json::from_u64(d)).collect()),
                ),
                ("elem".into(), Json::Str(a.elem.to_string())),
            ])
        })
        .collect();
    let loops = program
        .loops()
        .map(|(id, l)| {
            Json::Obj(vec![
                ("id".into(), Json::from_u64(id.index() as u64)),
                ("name".into(), Json::Str(l.name.clone())),
                ("lower".into(), Json::from_i64(l.lower)),
                ("upper".into(), Json::from_i64(l.upper)),
                ("step".into(), Json::from_i64(l.step)),
                ("body".into(), nodes_value(&l.body)),
            ])
        })
        .collect();
    let stmts = program
        .stmts()
        .map(|(id, s)| {
            Json::Obj(vec![
                ("id".into(), Json::from_u64(id.index() as u64)),
                ("name".into(), Json::Str(s.name.clone())),
                ("compute_cycles".into(), Json::from_u64(s.compute_cycles)),
                (
                    "accesses".into(),
                    Json::Arr(s.accesses.iter().map(access_value).collect()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("format".into(), Json::Str(PROGRAM_FORMAT.into())),
        ("version".into(), Json::from_u64(PROGRAM_VERSION)),
        ("name".into(), Json::Str(program.name().into())),
        ("arrays".into(), Json::Arr(arrays)),
        ("loops".into(), Json::Arr(loops)),
        ("stmts".into(), Json::Arr(stmts)),
        ("roots".into(), nodes_value(program.roots())),
    ])
}

fn nodes_value(nodes: &[NodeId]) -> Json {
    Json::Arr(nodes.iter().map(|n| Json::Str(n.to_string())).collect())
}

fn access_value(access: &Access) -> Json {
    Json::Obj(vec![
        ("array".into(), Json::from_u64(access.array.index() as u64)),
        ("kind".into(), Json::Str(access.kind.to_string())),
        (
            "index".into(),
            Json::Arr(access.index.iter().map(expr_value).collect()),
        ),
    ])
}

fn expr_value(expr: &AffineExpr) -> Json {
    Json::Obj(vec![
        ("constant".into(), Json::from_i64(expr.constant())),
        (
            "terms".into(),
            Json::Arr(
                expr.terms()
                    .map(|(l, c)| {
                        Json::Arr(vec![Json::from_u64(l.index() as u64), Json::from_i64(c)])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The canonical bytes of a program: its version-[`PROGRAM_VERSION`]
/// document in the compact rendering ([`Json::render_compact`]) — no
/// whitespace, fields in schema order, numbers as their shortest exact
/// text. Structurally equal programs produce identical bytes, and the
/// rendering is frozen with the schema version, so a stable hash over
/// these bytes (`mhla_core::fingerprint`) is a durable content address
/// for caching and deduplication across processes.
pub fn program_canonical_bytes(program: &Program) -> Vec<u8> {
    program_value(program).render_compact().into_bytes()
}

/// Deserializes a program from a version-[`PROGRAM_VERSION`] JSON document
/// and validates it.
///
/// # Errors
///
/// * [`SerdesError::Syntax`] — the input is not JSON,
/// * [`SerdesError::Schema`] — the document shape does not match the schema
///   (wrong format tag, missing field, id/position mismatch, bad node ref),
/// * [`SerdesError::Version`] — the document is from a different schema
///   version,
/// * [`SerdesError::Invalid`] — the decoded program fails
///   [`Program::validate`].
///
/// Never panics.
pub fn program_from_json(text: &str) -> Result<Program, SerdesError> {
    let doc = Json::parse(text)?;
    program_from_value(&doc)
}

/// Deserializes a program from an already-parsed [`Json`] value; see
/// [`program_from_json`].
///
/// # Errors
///
/// As [`program_from_json`], minus the syntax class.
pub fn program_from_value(doc: &Json) -> Result<Program, SerdesError> {
    let fields = doc.as_object("program document")?;
    check_envelope(fields, PROGRAM_FORMAT, PROGRAM_VERSION)?;
    let name = field(fields, "name", "program")?
        .as_str("program \"name\"")?
        .to_string();

    let mut arrays = Vec::new();
    for (i, entry) in field(fields, "arrays", "program")?
        .as_array("\"arrays\"")?
        .iter()
        .enumerate()
    {
        let what = format!("arrays[{i}]");
        let o = entry.as_object(&what)?;
        check_id(o, i, &what)?;
        let dims = field(o, "dims", &what)?
            .as_array(&format!("{what}.dims"))?
            .iter()
            .map(|d| d.as_u64(&format!("{what}.dims entry")))
            .collect::<Result<Vec<u64>, _>>()?;
        arrays.push(ArrayDecl {
            name: field(o, "name", &what)?
                .as_str(&format!("{what}.name"))?
                .to_string(),
            dims,
            elem: elem_from_str(field(o, "elem", &what)?.as_str(&format!("{what}.elem"))?)?,
        });
    }

    let mut loops = Vec::new();
    for (i, entry) in field(fields, "loops", "program")?
        .as_array("\"loops\"")?
        .iter()
        .enumerate()
    {
        let what = format!("loops[{i}]");
        let o = entry.as_object(&what)?;
        check_id(o, i, &what)?;
        loops.push(Loop {
            name: field(o, "name", &what)?
                .as_str(&format!("{what}.name"))?
                .to_string(),
            lower: field(o, "lower", &what)?.as_i64(&format!("{what}.lower"))?,
            upper: field(o, "upper", &what)?.as_i64(&format!("{what}.upper"))?,
            step: field(o, "step", &what)?.as_i64(&format!("{what}.step"))?,
            body: nodes_from_value(field(o, "body", &what)?, &format!("{what}.body"))?,
        });
    }

    let mut stmts = Vec::new();
    for (i, entry) in field(fields, "stmts", "program")?
        .as_array("\"stmts\"")?
        .iter()
        .enumerate()
    {
        let what = format!("stmts[{i}]");
        let o = entry.as_object(&what)?;
        check_id(o, i, &what)?;
        let mut accesses = Vec::new();
        for (j, a) in field(o, "accesses", &what)?
            .as_array(&format!("{what}.accesses"))?
            .iter()
            .enumerate()
        {
            accesses.push(access_from_value(a, &format!("{what}.accesses[{j}]"))?);
        }
        stmts.push(Statement {
            name: field(o, "name", &what)?
                .as_str(&format!("{what}.name"))?
                .to_string(),
            accesses,
            compute_cycles: field(o, "compute_cycles", &what)?
                .as_u64(&format!("{what}.compute_cycles"))?,
        });
    }

    let roots = nodes_from_value(field(fields, "roots", "program")?, "\"roots\"")?;

    let program = Program {
        name,
        arrays,
        loops,
        stmts,
        roots,
    };
    program.validate()?;
    Ok(program)
}

/// Checks the explicit `"id"` field against the entity's arena position.
fn check_id(fields: &[(String, Json)], position: usize, what: &str) -> Result<(), SerdesError> {
    let id = field(fields, "id", what)?.as_u64(&format!("{what}.id"))?;
    if id != position as u64 {
        return Err(SerdesError::Schema {
            what: format!("{what}: id {id} does not match arena position {position}"),
        });
    }
    Ok(())
}

fn elem_from_str(s: &str) -> Result<ElemType, SerdesError> {
    match s {
        "u8" => Ok(ElemType::U8),
        "i16" => Ok(ElemType::I16),
        "i32" => Ok(ElemType::I32),
        "f32" => Ok(ElemType::F32),
        "f64" => Ok(ElemType::F64),
        other => Err(SerdesError::Schema {
            what: format!("unknown element type \"{other}\""),
        }),
    }
}

fn arena_index(value: u64, what: &str) -> Result<usize, SerdesError> {
    if value > u64::from(u32::MAX) {
        return Err(SerdesError::Schema {
            what: format!("{what}: index {value} out of arena range"),
        });
    }
    Ok(value as usize)
}

fn nodes_from_value(value: &Json, what: &str) -> Result<Vec<NodeId>, SerdesError> {
    value
        .as_array(what)?
        .iter()
        .map(|n| node_from_str(n.as_str(&format!("{what} entry"))?, what))
        .collect()
}

/// Parses a node reference in its display form (`"L0"` / `"S3"`). The index
/// is *not* checked against the arena here — a dangling reference is a
/// program-level defect that [`Program::validate`] reports as the
/// [`ValidateError`] it is, not a schema error.
fn node_from_str(s: &str, what: &str) -> Result<NodeId, SerdesError> {
    let bad = || SerdesError::Schema {
        what: format!("{what}: invalid node reference \"{s}\" (expected \"L<n>\" or \"S<n>\")"),
    };
    let index = |digits: &str| -> Result<usize, SerdesError> {
        let v = digits.parse::<u64>().map_err(|_| bad())?;
        arena_index(v, what)
    };
    match s.as_bytes().first() {
        Some(b'L') => Ok(NodeId::Loop(LoopId::from_index(index(&s[1..])?))),
        Some(b'S') => Ok(NodeId::Stmt(StmtId::from_index(index(&s[1..])?))),
        _ => Err(bad()),
    }
}

fn access_from_value(value: &Json, what: &str) -> Result<Access, SerdesError> {
    let o = value.as_object(what)?;
    let array_raw = field(o, "array", what)?.as_u64(&format!("{what}.array"))?;
    let array = ArrayId::from_index(arena_index(array_raw, &format!("{what}.array"))?);
    let kind = match field(o, "kind", what)?.as_str(&format!("{what}.kind"))? {
        "read" => AccessKind::Read,
        "write" => AccessKind::Write,
        other => {
            return Err(SerdesError::Schema {
                what: format!("{what}.kind: unknown access kind \"{other}\""),
            })
        }
    };
    let index = field(o, "index", what)?
        .as_array(&format!("{what}.index"))?
        .iter()
        .enumerate()
        .map(|(k, e)| expr_from_value(e, &format!("{what}.index[{k}]")))
        .collect::<Result<Vec<AffineExpr>, _>>()?;
    Ok(Access { array, kind, index })
}

fn expr_from_value(value: &Json, what: &str) -> Result<AffineExpr, SerdesError> {
    let o = value.as_object(what)?;
    let mut expr =
        AffineExpr::constant_expr(field(o, "constant", what)?.as_i64(&format!("{what}.constant"))?);
    for (i, term) in field(o, "terms", what)?
        .as_array(&format!("{what}.terms"))?
        .iter()
        .enumerate()
    {
        let twhat = format!("{what}.terms[{i}]");
        let pair = term.as_array(&twhat)?;
        if pair.len() != 2 {
            return Err(SerdesError::Schema {
                what: format!("{twhat}: expected a [loop, coeff] pair"),
            });
        }
        let loop_raw = pair[0].as_u64(&format!("{twhat} loop"))?;
        let iter = LoopId::from_index(arena_index(loop_raw, &format!("{twhat} loop"))?);
        let coeff = pair[1].as_i64(&format!("{twhat} coeff"))?;
        expr = expr + AffineExpr::scaled_var(iter, coeff);
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sad_program() -> Program {
        let mut b = ProgramBuilder::new("sad");
        let cur = b.array("cur", &[16, 16], ElemType::U8);
        let ref_ = b.array("ref", &[32, 32], ElemType::U8);
        let y = b.begin_loop("y", 0, 16, 1);
        let x = b.begin_loop("x", 0, 16, 1);
        let (iy, ix) = (b.var(y), b.var(x));
        b.stmt("acc")
            .read(cur, vec![iy.clone(), ix.clone()])
            .read(ref_, vec![iy + 8, ix + 8])
            .compute_cycles(2)
            .finish();
        b.end_loop();
        b.end_loop();
        b.finish()
    }

    #[test]
    fn round_trips_a_real_program() {
        let p = sad_program();
        let text = program_to_json(&p);
        let back = program_from_json(&text).expect("round trip");
        assert_eq!(p, back);
        // And the rendered form is itself stable.
        assert_eq!(program_to_json(&back), text);
    }

    #[test]
    fn envelope_is_checked() {
        let p = sad_program();
        let text = program_to_json(&p);
        let wrong_version = text.replace("\"version\": 1", "\"version\": 99");
        match program_from_json(&wrong_version) {
            Err(SerdesError::Version {
                found: 99,
                expected: PROGRAM_VERSION,
            }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
        let wrong_format = text.replace("mhla.program", "mhla.platform");
        assert!(matches!(
            program_from_json(&wrong_format),
            Err(SerdesError::Schema { .. })
        ));
    }

    #[test]
    fn id_position_mismatch_is_rejected() {
        let p = sad_program();
        let text = program_to_json(&p);
        // The second array claims id 7.
        let bad = text.replacen("\"id\": 1", "\"id\": 7", 1);
        match program_from_json(&bad) {
            Err(SerdesError::Schema { what }) => assert!(what.contains("arena position")),
            other => panic!("expected schema error, got {other:?}"),
        }
    }

    #[test]
    fn dangling_node_reference_is_a_validation_error() {
        let p = sad_program();
        let text = program_to_json(&p);
        let bad = text.replace("\"roots\": [\"L0\"]", "\"roots\": [\"L9\"]");
        assert!(matches!(
            program_from_json(&bad),
            Err(SerdesError::Invalid(_))
        ));
    }

    #[test]
    fn malformed_inputs_yield_syntax_errors() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"format\": }",
            "nul",
            "\"unterminated",
            "{\"a\": 1e}",
            "\u{7f}",
            "{} trailing",
        ] {
            assert!(
                matches!(Json::parse(bad), Err(SerdesError::Syntax { .. })),
                "input {bad:?} should be a syntax error"
            );
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000);
        assert!(matches!(
            Json::parse(&deep),
            Err(SerdesError::Syntax { .. })
        ));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        // u64 above 2^53 survives because the raw token is kept.
        let big = u64::MAX;
        let v = Json::parse(&Json::from_u64(big).render()).expect("parse");
        assert_eq!(v.as_u64("big").expect("u64"), big);
        // f64 shortest display round-trips bit-exactly.
        for f in [0.1, 1.0 / 3.0, 2.5e-17, -0.0, 1e300] {
            let v = Json::parse(&Json::from_f64(f).render()).expect("parse");
            assert_eq!(v.as_f64("f").expect("f64").to_bits(), f.to_bits());
        }
        // Non-finite encodes as null and is rejected by the typed reader.
        assert!(Json::from_f64(f64::NAN).is_null());
        assert!(Json::from_f64(f64::INFINITY).as_f64("inf").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tabs\tand\nnewlines",
            "π ≠ \u{1f600}",
        ] {
            let rendered = Json::Str(s.to_string()).render();
            let back = Json::parse(&rendered).expect("parse");
            assert_eq!(back, Json::Str(s.to_string()));
        }
        // Surrogate-pair escapes parse to the astral char.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").expect("parse"),
            Json::Str("\u{1f600}".to_string())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn compact_rendering_is_canonical_and_parses_back() {
        let p = sad_program();
        let compact = String::from_utf8(program_canonical_bytes(&p)).expect("utf8");
        // One line, no framing whitespace.
        assert!(!compact.contains('\n'));
        assert!(!compact.contains(": "));
        // Parses back to the same program…
        assert_eq!(program_from_json(&compact).expect("parse"), p);
        // …and equal programs give identical bytes (content address).
        assert_eq!(program_canonical_bytes(&p), program_canonical_bytes(&p));
        // Compact and pretty renderings are the same value.
        assert_eq!(
            Json::parse(&compact).expect("compact"),
            Json::parse(&program_to_json(&p)).expect("pretty")
        );
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let p = sad_program();
        let text = program_to_json(&p).replacen(
            "\"name\": \"sad\",",
            "\"name\": \"sad\",\n  \"future_field\": [1, 2, 3],",
            1,
        );
        assert_eq!(program_from_json(&text).expect("parse"), p);
    }
}
