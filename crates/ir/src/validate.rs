//! Structural validation of programs.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::ids::{LoopId, NodeId, StmtId};
use crate::program::Program;

/// A structural defect detected by [`Program::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidateError {
    /// An access subscript count does not match the array rank.
    RankMismatch {
        /// Offending statement.
        stmt: StmtId,
        /// Name of the accessed array.
        array: String,
        /// Array rank.
        expected: usize,
        /// Number of subscripts in the access.
        found: usize,
    },
    /// An id referenced from the tree is out of range for its arena.
    DanglingId {
        /// Description of the offending reference.
        what: String,
    },
    /// A loop or statement appears more than once in the tree (not a tree).
    SharedNode {
        /// The node appearing twice.
        node: NodeId,
    },
    /// A loop or statement is never reachable from the roots.
    UnreachableNode {
        /// The orphaned node.
        node: NodeId,
    },
    /// A subscript uses an iterator of a loop that does not enclose the
    /// statement.
    IteratorOutOfScope {
        /// Offending statement.
        stmt: StmtId,
        /// Iterator used outside its loop.
        iterator: LoopId,
    },
    /// Two arrays share a name.
    DuplicateArrayName {
        /// The duplicated name.
        name: String,
    },
    /// A loop has a non-positive step.
    BadLoopStep {
        /// Offending loop.
        loop_id: LoopId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::RankMismatch {
                stmt,
                array,
                expected,
                found,
            } => write!(
                f,
                "statement {stmt} accesses `{array}` with {found} subscript(s), array has rank {expected}"
            ),
            ValidateError::DanglingId { what } => {
                write!(f, "dangling id: {what}")
            }
            ValidateError::SharedNode { node } => {
                write!(f, "node {node} appears more than once in the tree")
            }
            ValidateError::UnreachableNode { node } => {
                write!(f, "node {node} is not reachable from the program roots")
            }
            ValidateError::IteratorOutOfScope { stmt, iterator } => write!(
                f,
                "statement {stmt} uses iterator {iterator} of a non-enclosing loop"
            ),
            ValidateError::DuplicateArrayName { name } => {
                write!(f, "duplicate array name `{name}`")
            }
            ValidateError::BadLoopStep { loop_id } => {
                write!(f, "loop {loop_id} has a non-positive step")
            }
        }
    }
}

impl Error for ValidateError {}

pub(crate) fn validate(p: &Program) -> Result<(), ValidateError> {
    // Unique array names.
    let mut names = HashSet::new();
    for (_, a) in p.arrays() {
        if !names.insert(a.name.as_str()) {
            return Err(ValidateError::DuplicateArrayName {
                name: a.name.clone(),
            });
        }
    }
    // Positive steps.
    for (lid, l) in p.loops() {
        if l.step <= 0 {
            return Err(ValidateError::BadLoopStep { loop_id: lid });
        }
    }
    // Tree shape: every node referenced at most once, all ids valid.
    let mut seen_loops = vec![false; p.loop_count()];
    let mut seen_stmts = vec![false; p.stmt_count()];
    fn visit(
        p: &Program,
        nodes: &[NodeId],
        seen_loops: &mut [bool],
        seen_stmts: &mut [bool],
    ) -> Result<(), ValidateError> {
        for &n in nodes {
            match n {
                NodeId::Loop(l) => {
                    if l.index() >= seen_loops.len() {
                        return Err(ValidateError::DanglingId {
                            what: format!("loop {l}"),
                        });
                    }
                    if std::mem::replace(&mut seen_loops[l.index()], true) {
                        return Err(ValidateError::SharedNode { node: n });
                    }
                    visit(p, &p.loop_(l).body, seen_loops, seen_stmts)?;
                }
                NodeId::Stmt(s) => {
                    if s.index() >= seen_stmts.len() {
                        return Err(ValidateError::DanglingId {
                            what: format!("statement {s}"),
                        });
                    }
                    if std::mem::replace(&mut seen_stmts[s.index()], true) {
                        return Err(ValidateError::SharedNode { node: n });
                    }
                }
            }
        }
        Ok(())
    }
    visit(p, p.roots(), &mut seen_loops, &mut seen_stmts)?;
    for (i, seen) in seen_loops.iter().enumerate() {
        if !seen {
            return Err(ValidateError::UnreachableNode {
                node: NodeId::Loop(LoopId::from_index(i)),
            });
        }
    }
    for (i, seen) in seen_stmts.iter().enumerate() {
        if !seen {
            return Err(ValidateError::UnreachableNode {
                node: NodeId::Stmt(StmtId::from_index(i)),
            });
        }
    }

    // Accesses: rank match, array ids valid, iterators in scope.
    let info = p.info();
    for (sid, stmt) in p.stmts() {
        let enclosing: HashSet<LoopId> = info
            .enclosing_loops(NodeId::Stmt(sid))
            .into_iter()
            .collect();
        for acc in &stmt.accesses {
            if acc.array.index() >= p.array_count() {
                return Err(ValidateError::DanglingId {
                    what: format!("array {} in statement {sid}", acc.array),
                });
            }
            let decl = p.array(acc.array);
            if acc.index.len() != decl.rank() {
                return Err(ValidateError::RankMismatch {
                    stmt: sid,
                    array: decl.name.clone(),
                    expected: decl.rank(),
                    found: acc.index.len(),
                });
            }
            for idx in &acc.index {
                for it in idx.iterators() {
                    if it.index() >= p.loop_count() {
                        return Err(ValidateError::DanglingId {
                            what: format!("iterator {it} in statement {sid}"),
                        });
                    }
                    if !enclosing.contains(&it) {
                        return Err(ValidateError::IteratorOutOfScope {
                            stmt: sid,
                            iterator: it,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::AffineExpr;
    use crate::program::{Access, AccessKind, ElemType};

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new("ok");
        let a = b.array("a", &[4, 4], ElemType::U8);
        b.loop_scope("i", 0, 4, 1, |b, li| {
            let iv = b.var(li);
            b.stmt("s").read(a, vec![iv.clone(), iv]).finish();
        });
        assert!(b.finish().validate().is_ok());
    }

    #[test]
    fn detects_rank_mismatch() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.array("a", &[4, 4], ElemType::U8);
        b.loop_scope("i", 0, 4, 1, |b, li| {
            let iv = b.var(li);
            b.stmt("s").read(a, vec![iv]).finish(); // rank 2 array, 1 subscript
        });
        // Bypass the builder's panic by validating a hand-mutated clone.
        let result = std::panic::catch_unwind(move || b.finish());
        assert!(result.is_err(), "builder re-validates and panics");
    }

    #[test]
    fn detects_out_of_scope_iterator() {
        // Build a raw program where a statement uses an iterator of a loop
        // that does not enclose it.
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[4], ElemType::U8);
        let li = b.loop_scope("i", 0, 4, 1, |b, li| {
            let iv = b.var(li);
            b.stmt("s0").read(a, vec![iv]).finish();
            li
        });
        let mut p = b.finish();
        // Attach an access that references li from a new root statement.
        p.stmts.push(crate::program::Statement {
            name: "rogue".into(),
            accesses: vec![Access {
                array: a,
                kind: AccessKind::Read,
                index: vec![AffineExpr::var(li)],
            }],
            compute_cycles: 1,
        });
        p.roots.push(NodeId::Stmt(StmtId::from_index(1)));
        assert!(matches!(
            p.validate(),
            Err(ValidateError::IteratorOutOfScope { .. })
        ));
    }

    #[test]
    fn detects_shared_node() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[4], ElemType::U8);
        b.loop_scope("i", 0, 4, 1, |b, li| {
            let iv = b.var(li);
            b.stmt("s").read(a, vec![iv]).finish();
        });
        let mut p = b.finish();
        // Duplicate the loop at the root.
        let dup = p.roots[0];
        p.roots.push(dup);
        assert!(matches!(
            p.validate(),
            Err(ValidateError::SharedNode { .. })
        ));
    }

    #[test]
    fn detects_unreachable_node() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[4], ElemType::U8);
        b.loop_scope("i", 0, 4, 1, |b, li| {
            let iv = b.var(li);
            b.stmt("s").read(a, vec![iv]).finish();
        });
        let mut p = b.finish();
        // Orphan statement in the arena but not in the tree.
        p.stmts.push(crate::program::Statement {
            name: "orphan".into(),
            accesses: vec![],
            compute_cycles: 1,
        });
        assert!(matches!(
            p.validate(),
            Err(ValidateError::UnreachableNode { .. })
        ));
    }

    #[test]
    fn detects_duplicate_array_names() {
        let mut b = ProgramBuilder::new("p");
        let _ = b.array("a", &[4], ElemType::U8);
        let _ = b.array("a", &[8], ElemType::U8);
        let result = std::panic::catch_unwind(move || b.finish());
        assert!(result.is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ValidateError::RankMismatch {
            stmt: StmtId::from_index(0),
            array: "img".into(),
            expected: 2,
            found: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("img"));
        assert!(msg.contains("rank 2"));
    }
}
