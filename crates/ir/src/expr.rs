//! Affine index expressions over loop iterators.
//!
//! An [`AffineExpr`] is a function `c0 + Σ aᵢ·iᵢ` of the iterator values of
//! enclosing loops. Affine subscripts are the only subscripts MHLA's
//! geometric analyses (footprints, reuse, transfers) can reason about, and
//! the only ones this IR admits.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::ids::LoopId;

/// An affine expression `constant + Σ coeffᵢ · iterᵢ` over loop iterators.
///
/// Terms with zero coefficients are never stored, so two expressions are
/// `==` exactly when they denote the same affine function.
///
/// # Example
///
/// ```
/// use mhla_ir::{AffineExpr, LoopId};
///
/// let i = AffineExpr::var(LoopId::from_index(0));
/// let j = AffineExpr::var(LoopId::from_index(1));
/// let e = i * 16 + j.clone() + 8;
/// assert_eq!(e.coeff(LoopId::from_index(0)), 16);
/// assert_eq!(e.coeff(LoopId::from_index(1)), 1);
/// assert_eq!(e.constant(), 8);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    /// Map from iterator to coefficient; invariant: no zero coefficients.
    terms: BTreeMap<LoopId, i64>,
    constant: i64,
}

impl AffineExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant_expr(value: i64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: value,
        }
    }

    /// The expression consisting of a single iterator with coefficient 1.
    pub fn var(iter: LoopId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(iter, 1);
        Self { terms, constant: 0 }
    }

    /// Builds `coeff · iter`.
    pub fn scaled_var(iter: LoopId, coeff: i64) -> Self {
        let mut terms = BTreeMap::new();
        if coeff != 0 {
            terms.insert(iter, coeff);
        }
        Self { terms, constant: 0 }
    }

    /// Returns the constant term.
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// Returns the coefficient of `iter` (zero when absent).
    pub fn coeff(&self, iter: LoopId) -> i64 {
        self.terms.get(&iter).copied().unwrap_or(0)
    }

    /// Returns `true` when the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over the `(iterator, coefficient)` terms in iterator order.
    ///
    /// Coefficients are guaranteed non-zero.
    pub fn terms(&self) -> impl Iterator<Item = (LoopId, i64)> + '_ {
        self.terms.iter().map(|(l, c)| (*l, *c))
    }

    /// Returns the iterators with non-zero coefficient.
    pub fn iterators(&self) -> impl Iterator<Item = LoopId> + '_ {
        self.terms.keys().copied()
    }

    /// Evaluates the expression under an iterator valuation.
    ///
    /// Iterators missing from the valuation evaluate as zero, which matches
    /// the convention that un-entered loops contribute their lower bound of
    /// a normalized (zero-based) nest.
    pub fn eval(&self, env: impl Fn(LoopId) -> i64) -> i64 {
        self.constant + self.terms.iter().map(|(l, c)| c * env(*l)).sum::<i64>()
    }

    /// Returns the minimum and maximum value of the expression when each
    /// iterator `l` ranges over `range(l) = Some((min, max))` (inclusive) and
    /// iterators with `range(l) = None` are pinned to zero.
    ///
    /// Because the expression is affine, extremes occur at interval
    /// endpoints; the result is exact (no relaxation).
    pub fn value_range(&self, range: impl Fn(LoopId) -> Option<(i64, i64)>) -> (i64, i64) {
        let mut lo = self.constant;
        let mut hi = self.constant;
        for (&l, &c) in &self.terms {
            if let Some((rmin, rmax)) = range(l) {
                debug_assert!(rmin <= rmax, "empty iterator range for {l}");
                if c >= 0 {
                    lo += c * rmin;
                    hi += c * rmax;
                } else {
                    lo += c * rmax;
                    hi += c * rmin;
                }
            }
        }
        (lo, hi)
    }

    /// Width of the value range (`max - min + 1`) when each *free* iterator
    /// spans `span(l) = Some(extent)` positions scaled by its coefficient,
    /// and all other iterators are fixed.
    ///
    /// `span(l)` must be `last_value(l) - first_value(l)` (i.e. `(trip-1) ·
    /// step`) for free iterators and `None` for fixed ones. Fixed iterators
    /// shift the range but do not change its width, so the result is
    /// independent of their values.
    pub fn width_over(&self, span: impl Fn(LoopId) -> Option<i64>) -> i64 {
        let mut width = 1;
        for (&l, &c) in &self.terms {
            if let Some(extent) = span(l) {
                debug_assert!(extent >= 0, "negative iterator extent for {l}");
                width += c.abs() * extent;
            }
        }
        width
    }

    /// Substitutes a fixed value for an iterator, folding it into the
    /// constant.
    pub fn substitute(&self, iter: LoopId, value: i64) -> Self {
        let mut out = self.clone();
        if let Some(c) = out.terms.remove(&iter) {
            out.constant += c * value;
        }
        out
    }

    fn insert_term(&mut self, iter: LoopId, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(iter).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            self.terms.remove(&iter);
        }
    }
}

impl From<i64> for AffineExpr {
    fn from(value: i64) -> Self {
        AffineExpr::constant_expr(value)
    }
}

impl Add for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, rhs: AffineExpr) -> AffineExpr {
        self.constant += rhs.constant;
        for (l, c) in rhs.terms {
            self.insert_term(l, c);
        }
        self
    }
}

impl Add<i64> for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, rhs: i64) -> AffineExpr {
        self.constant += rhs;
        self
    }
}

impl Sub for AffineExpr {
    type Output = AffineExpr;
    fn sub(self, rhs: AffineExpr) -> AffineExpr {
        self + (-rhs)
    }
}

impl Sub<i64> for AffineExpr {
    type Output = AffineExpr;
    fn sub(mut self, rhs: i64) -> AffineExpr {
        self.constant -= rhs;
        self
    }
}

impl Neg for AffineExpr {
    type Output = AffineExpr;
    fn neg(mut self) -> AffineExpr {
        self.constant = -self.constant;
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self
    }
}

impl Mul<i64> for AffineExpr {
    type Output = AffineExpr;
    fn mul(mut self, rhs: i64) -> AffineExpr {
        if rhs == 0 {
            return AffineExpr::zero();
        }
        self.constant *= rhs;
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self
    }
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (l, c) in &self.terms {
            if first {
                if *c == 1 {
                    write!(f, "{l}")?;
                } else if *c == -1 {
                    write!(f, "-{l}")?;
                } else {
                    write!(f, "{c}*{l}")?;
                }
                first = false;
            } else if *c == 1 {
                write!(f, " + {l}")?;
            } else if *c == -1 {
                write!(f, " - {l}")?;
            } else if *c > 0 {
                write!(f, " + {c}*{l}")?;
            } else {
                write!(f, " - {}*{l}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> LoopId {
        LoopId::from_index(i)
    }

    #[test]
    fn zero_and_constant() {
        assert!(AffineExpr::zero().is_constant());
        assert_eq!(AffineExpr::zero().constant(), 0);
        assert_eq!(AffineExpr::constant_expr(5).constant(), 5);
        assert_eq!(AffineExpr::from(-3).constant(), -3);
    }

    #[test]
    fn arithmetic_normalizes_zero_coefficients() {
        let i = AffineExpr::var(l(0));
        let e = i.clone() - i;
        assert!(e.is_constant());
        assert_eq!(e, AffineExpr::zero());
    }

    #[test]
    fn add_merges_terms() {
        let e = AffineExpr::var(l(0)) * 2 + AffineExpr::var(l(0)) + 7;
        assert_eq!(e.coeff(l(0)), 3);
        assert_eq!(e.constant(), 7);
    }

    #[test]
    #[allow(clippy::erasing_op)]
    fn scale_by_zero_is_zero() {
        let e = (AffineExpr::var(l(0)) + 4) * 0;
        assert_eq!(e, AffineExpr::zero());
    }

    #[test]
    fn eval_uses_environment() {
        let e = AffineExpr::var(l(0)) * 16 + AffineExpr::var(l(1)) + 3;
        let v = e.eval(|it| if it == l(0) { 2 } else { 5 });
        assert_eq!(v, 16 * 2 + 5 + 3);
    }

    #[test]
    fn eval_missing_iterators_are_zero() {
        let e = AffineExpr::var(l(0)) * 10 + 1;
        assert_eq!(e.eval(|_| 0), 1);
    }

    #[test]
    fn value_range_handles_signs() {
        // e = 2i - 3j + 1, i in [0,4], j in [1,2]
        let e = AffineExpr::scaled_var(l(0), 2) + AffineExpr::scaled_var(l(1), -3) + 1;
        let (lo, hi) = e.value_range(|it| {
            if it == l(0) {
                Some((0, 4))
            } else {
                Some((1, 2))
            }
        });
        assert_eq!(lo, 0 - 6 + 1);
        assert_eq!(hi, 8 - 3 + 1);
    }

    #[test]
    fn value_range_pins_missing_iterators() {
        let e = AffineExpr::var(l(0)) + AffineExpr::var(l(1));
        let (lo, hi) = e.value_range(|it| if it == l(0) { Some((0, 3)) } else { None });
        assert_eq!((lo, hi), (0, 3));
    }

    #[test]
    fn width_is_independent_of_fixed_iterators() {
        // e = i + 16*mb ; i free over 16 positions, mb fixed.
        let e = AffineExpr::var(l(0)) + AffineExpr::scaled_var(l(1), 16);
        let w = e.width_over(|it| if it == l(0) { Some(15) } else { None });
        assert_eq!(w, 16);
    }

    #[test]
    fn width_accumulates_absolute_coefficients() {
        let e = AffineExpr::scaled_var(l(0), -2) + AffineExpr::var(l(1));
        let w = e.width_over(|it| if it == l(0) { Some(3) } else { Some(4) });
        assert_eq!(w, 1 + 2 * 3 + 4);
    }

    #[test]
    fn substitute_folds_into_constant() {
        let e = AffineExpr::var(l(0)) * 4 + AffineExpr::var(l(1)) + 1;
        let s = e.substitute(l(0), 3);
        assert_eq!(s.coeff(l(0)), 0);
        assert_eq!(s.constant(), 13);
        assert_eq!(s.coeff(l(1)), 1);
    }

    #[test]
    fn display_is_readable() {
        let e = AffineExpr::var(l(0)) * 16 + AffineExpr::scaled_var(l(1), -1) + 8;
        assert_eq!(e.to_string(), "16*L0 - L1 + 8");
        assert_eq!(AffineExpr::zero().to_string(), "0");
        assert_eq!(AffineExpr::constant_expr(-2).to_string(), "-2");
    }

    #[test]
    fn equality_is_semantic() {
        let a = AffineExpr::var(l(0)) + 1 - 1;
        let b = AffineExpr::var(l(0));
        assert_eq!(a, b);
    }
}
