//! Randomized, always-valid program generation for property tests
//! (enabled by the `arbitrary` cargo feature).
//!
//! The equivalence guarantees of the exploration layer — pruned sweeps
//! bit-identical to exhaustive ones, context-backed runs bit-identical to
//! fresh ones — are stated for *arbitrary* programs, but hand-written
//! fixtures only ever exercise a few loop shapes. This module provides a
//! bounded [`proptest`] strategy over small loop nests built through
//! [`ProgramBuilder`]: 1–3 perfectly nested loop levels, 1–3 arrays,
//! statements at arbitrary levels with affine read/write accesses and
//! varying compute weights.
//!
//! Generation is *spec-first*: [`program_specs`] draws a plain-data
//! [`ProgramSpec`] (printable on failure, so a failing case can be
//! reconstructed by hand — the offline proptest stand-in does not
//! shrink), and [`ProgramSpec::build`] deterministically turns it into a
//! validated [`Program`]. Array extents are derived from the generated
//! access patterns (coefficients are non-negative, so the maximum index
//! is reached at the loop upper bounds), which makes every generated
//! program pass [`Program::validate`] by construction.

use proptest::prelude::*;

use crate::ids::{LoopId, NodeId, StmtId};
use crate::program::{Access, AccessKind, ArrayDecl, Statement};
use crate::{AffineExpr, ArrayId, ElemType, Program, ProgramBuilder};

/// Maximum loop-nest depth of a generated program (and the length of
/// [`AccessSpec::coeffs`]).
pub const MAX_DEPTH: usize = 3;

/// One generated array access.
#[derive(Clone, Debug)]
pub struct AccessSpec {
    /// Selects the accessed array (taken modulo the program's array
    /// count).
    pub array: u8,
    /// Write instead of read.
    pub write: bool,
    /// Per loop level, the iterator's coefficient in the (1-D) index
    /// expression; levels deeper than the statement's are ignored.
    pub coeffs: [i64; MAX_DEPTH],
    /// Constant offset of the index expression.
    pub offset: u8,
}

/// One generated statement.
#[derive(Clone, Debug)]
pub struct StmtSpec {
    /// Loop level the statement sits in (clamped to the innermost level;
    /// level 0 is the outermost loop).
    pub level: u8,
    /// Pure datapath cycles per execution.
    pub compute: u8,
    /// The statement's accesses (1–2).
    pub accesses: Vec<AccessSpec>,
}

/// A complete generated program description: what [`program_specs`]
/// draws and [`ProgramSpec::build`] materializes.
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    /// Number of arrays (1–3).
    pub arrays: u8,
    /// Trip count per loop level, outermost first (the nest depth is
    /// `trips.len()`).
    pub trips: Vec<i64>,
    /// The statements (each clamped into the nest).
    pub stmts: Vec<StmtSpec>,
}

impl ProgramSpec {
    /// The nest depth.
    fn depth(&self) -> usize {
        self.trips.len().clamp(1, MAX_DEPTH)
    }

    /// The loop level a statement actually lands in.
    fn stmt_level(&self, s: &StmtSpec) -> usize {
        (s.level as usize).min(self.depth() - 1)
    }

    /// The largest value an access's index expression reaches (all
    /// coefficients are non-negative, so it is attained at the loop
    /// upper bounds).
    fn max_index(&self, level: usize, access: &AccessSpec) -> i64 {
        let mut max = access.offset as i64;
        for (j, &trip) in self.trips.iter().enumerate().take(level + 1) {
            max += access.coeffs[j].max(0) * (trip - 1).max(0);
        }
        max
    }

    /// Deterministically builds (and validates) the described program.
    pub fn build(&self) -> Program {
        let depth = self.depth();
        let arrays = self.arrays.clamp(1, 3) as usize;
        // Array extents cover every generated access; element types cycle
        // through a few sizes so byte footprints vary.
        let mut extents = vec![1i64; arrays];
        for s in &self.stmts {
            let level = self.stmt_level(s);
            for a in &s.accesses {
                let idx = a.array as usize % arrays;
                extents[idx] = extents[idx].max(self.max_index(level, a) + 1);
            }
        }
        let elems = [ElemType::U8, ElemType::I16, ElemType::I32];
        let mut b = ProgramBuilder::new("generated");
        let ids: Vec<_> = extents
            .iter()
            .enumerate()
            .map(|(i, &e)| b.array(format!("a{i}"), &[e as u64], elems[i % elems.len()]))
            .collect();
        let mut loops = Vec::with_capacity(depth);
        for (lvl, &trip) in self.trips.iter().enumerate().take(depth) {
            loops.push(b.begin_loop(format!("l{lvl}"), 0, trip.max(1), 1));
            for s in self.stmts.iter().filter(|s| self.stmt_level(s) == lvl) {
                let mut sb = b.stmt("s").compute_cycles(s.compute as u64);
                for a in &s.accesses {
                    let mut idx = AffineExpr::constant_expr(a.offset as i64);
                    for (j, &l) in loops.iter().enumerate() {
                        idx = idx + AffineExpr::scaled_var(l, a.coeffs[j].max(0));
                    }
                    let array = ids[a.array as usize % arrays];
                    sb = if a.write {
                        sb.write(array, vec![idx])
                    } else {
                        sb.read(array, vec![idx])
                    };
                }
                sb.finish();
            }
        }
        for _ in 0..depth {
            b.end_loop();
        }
        b.finish()
    }
}

/// Strategy over [`AccessSpec`]s.
fn access_specs() -> impl Strategy<Value = AccessSpec> {
    (
        0u8..=2,
        any::<bool>(),
        proptest::prop::array::uniform3(0i64..=3),
        0u8..=15,
    )
        .prop_map(|(array, write, coeffs, offset)| AccessSpec {
            array,
            write,
            coeffs,
            offset,
        })
}

/// Strategy over [`StmtSpec`]s.
fn stmt_specs() -> impl Strategy<Value = StmtSpec> {
    (
        0u8..=2,
        0u8..=8,
        proptest::prop::collection::vec(access_specs(), 1..=2usize),
    )
        .prop_map(|(level, compute, accesses)| StmtSpec {
            level,
            compute,
            accesses,
        })
}

/// The bounded program-spec strategy: 1–3 nested loops of 2–6 iterations,
/// 1–3 arrays, 1–4 statements of 1–2 affine accesses each.
pub fn program_specs() -> impl Strategy<Value = ProgramSpec> {
    (
        1u8..=3,
        proptest::prop::collection::vec(2i64..=6, 1..=MAX_DEPTH),
        proptest::prop::collection::vec(stmt_specs(), 1..=4usize),
    )
        .prop_map(|(arrays, trips, stmts)| ProgramSpec {
            arrays,
            trips,
            stmts,
        })
}

/// Strategy over validated [`Program`]s (see [`program_specs`]).
pub fn programs() -> impl Strategy<Value = Program> {
    program_specs().prop_map(|spec| spec.build())
}

/// A structural corruption applicable to any generated program.
///
/// Each variant produces a program that *always* fails
/// [`Program::validate`] (the engine's no-panic property tests assert
/// every `try_` entry point rejects it with a typed error instead of
/// crashing). `Program`'s arenas are crate-private by design — this is
/// the only supported way to materialize invalid programs, and it exists
/// solely for testing the fallible boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Corruption {
    /// A root references a statement id past the arena
    /// (`ValidateError::DanglingId`).
    DanglingRootStmt,
    /// The first root appears twice (`ValidateError::SharedNode`).
    DuplicatedRoot,
    /// A statement exists in the arena but not in the tree
    /// (`ValidateError::UnreachableNode`).
    OrphanStmt,
    /// A new root statement uses the innermost iterator from outside its
    /// loop (`ValidateError::IteratorOutOfScope`).
    RogueIterator,
    /// The first access gains an extra subscript
    /// (`ValidateError::RankMismatch` — generated arrays have rank 1).
    ExtraSubscript,
    /// The first loop's step becomes zero (`ValidateError::BadLoopStep`).
    ZeroStep,
    /// A second array reuses the first array's name
    /// (`ValidateError::DuplicateArrayName`).
    DuplicateArrayName,
}

impl Corruption {
    /// Every corruption, for exhaustive sweeps and `prop_oneof` draws.
    pub const ALL: [Corruption; 7] = [
        Corruption::DanglingRootStmt,
        Corruption::DuplicatedRoot,
        Corruption::OrphanStmt,
        Corruption::RogueIterator,
        Corruption::ExtraSubscript,
        Corruption::ZeroStep,
        Corruption::DuplicateArrayName,
    ];

    /// Returns a corrupted copy of `p`. The input must be a generated
    /// program (≥ 1 loop, ≥ 1 statement with ≥ 1 access, rank-1 arrays —
    /// everything [`programs`] guarantees); the output fails
    /// [`Program::validate`].
    pub fn apply(self, p: &Program) -> Program {
        let mut p = p.clone();
        match self {
            Corruption::DanglingRootStmt => {
                p.roots
                    .push(NodeId::Stmt(StmtId::from_index(p.stmts.len())));
            }
            Corruption::DuplicatedRoot => {
                p.roots.push(p.roots[0]);
            }
            Corruption::OrphanStmt => {
                p.stmts.push(Statement {
                    name: "orphan".into(),
                    accesses: vec![],
                    compute_cycles: 1,
                });
            }
            Corruption::RogueIterator => {
                p.stmts.push(Statement {
                    name: "rogue".into(),
                    accesses: vec![Access {
                        array: ArrayId::from_index(0),
                        kind: AccessKind::Read,
                        index: vec![AffineExpr::var(LoopId::from_index(0))],
                    }],
                    compute_cycles: 1,
                });
                p.roots
                    .push(NodeId::Stmt(StmtId::from_index(p.stmts.len() - 1)));
            }
            Corruption::ExtraSubscript => {
                p.stmts[0].accesses[0]
                    .index
                    .push(AffineExpr::constant_expr(0));
            }
            Corruption::ZeroStep => {
                p.loops[0].step = 0;
            }
            Corruption::DuplicateArrayName => {
                let name = p.arrays[0].name.clone();
                p.arrays.push(ArrayDecl {
                    name,
                    dims: vec![1],
                    elem: ElemType::U8,
                });
            }
        }
        p
    }
}

/// Strategy over (valid program, corruption) pairs — the raw material of
/// the no-panic suite.
pub fn corrupted_programs() -> impl Strategy<Value = (Program, Corruption)> {
    (programs(), 0u8..Corruption::ALL.len() as u8)
        .prop_map(|(p, i)| (p, Corruption::ALL[i as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every generated program validates, stays within the documented
        /// bounds, and its accesses stay inside the declared extents.
        #[test]
        fn generated_programs_are_valid_and_bounded(spec in program_specs()) {
            let p = spec.build();
            prop_assert!(p.validate().is_ok());
            prop_assert!(p.loop_count() >= 1 && p.loop_count() <= MAX_DEPTH);
            prop_assert!(p.array_count() >= 1 && p.array_count() <= 3);
            prop_assert!(p.stmt_count() <= 4);
        }

        /// Every corruption turns every generated program invalid — the
        /// precondition the engine's no-panic suite builds on.
        #[test]
        fn every_corruption_invalidates(spec in program_specs()) {
            let p = spec.build();
            for c in Corruption::ALL {
                let bad = c.apply(&p);
                prop_assert!(bad.validate().is_err(), "{c:?} left the program valid");
            }
        }
    }
}
