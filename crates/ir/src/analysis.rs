//! Derived structural facts about a [`Program`].

use std::collections::HashMap;

use crate::ids::{ArrayId, LoopId, NodeId, StmtId};
use crate::program::{AccessKind, Program};

/// Read/write access totals for one array.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AccessCounts {
    /// Total element reads over one program execution.
    pub reads: u64,
    /// Total element writes over one program execution.
    pub writes: u64,
}

impl AccessCounts {
    /// Reads plus writes.
    pub fn total(self) -> u64 {
        self.reads + self.writes
    }
}

/// Structural information derived from a [`Program`]:
/// parent links, nesting depth, execution counts and access counts.
///
/// Obtained from [`Program::info`]; computation is `O(program size)`.
/// `Clone` is cheap relative to recomputation (a handful of `Vec`s), so
/// callers sharing one analysis across many consumers can either borrow it
/// or clone it.
#[derive(Clone, Debug)]
pub struct ProgramInfo<'p> {
    program: &'p Program,
    loop_parent: Vec<Option<LoopId>>,
    stmt_parent: Vec<Option<LoopId>>,
    loop_depth: Vec<usize>,
    /// Executions of the loop *entry* (product of enclosing trip counts).
    loop_entries: Vec<u64>,
    stmt_executions: Vec<u64>,
    access_counts: Vec<AccessCounts>,
}

impl<'p> ProgramInfo<'p> {
    pub(crate) fn new(program: &'p Program) -> Self {
        let mut info = ProgramInfo {
            program,
            loop_parent: vec![None; program.loop_count()],
            stmt_parent: vec![None; program.stmt_count()],
            loop_depth: vec![0; program.loop_count()],
            loop_entries: vec![0; program.loop_count()],
            stmt_executions: vec![0; program.stmt_count()],
            access_counts: vec![AccessCounts::default(); program.array_count()],
        };
        info.walk(program.roots(), None, 0, 1);
        for (sid, stmt) in program.stmts() {
            let execs = info.stmt_executions[sid.index()];
            for acc in &stmt.accesses {
                let c = &mut info.access_counts[acc.array.index()];
                match acc.kind {
                    AccessKind::Read => c.reads += execs,
                    AccessKind::Write => c.writes += execs,
                }
            }
        }
        info
    }

    fn walk(&mut self, nodes: &[NodeId], parent: Option<LoopId>, depth: usize, execs: u64) {
        for &n in nodes {
            match n {
                NodeId::Loop(l) => {
                    self.loop_parent[l.index()] = parent;
                    self.loop_depth[l.index()] = depth;
                    self.loop_entries[l.index()] = execs;
                    let body = self.program.loop_(l).body.clone();
                    let trips = self.program.loop_(l).trip_count();
                    self.walk(&body, Some(l), depth + 1, execs * trips);
                }
                NodeId::Stmt(s) => {
                    self.stmt_parent[s.index()] = parent;
                    self.stmt_executions[s.index()] = execs;
                }
            }
        }
    }

    /// The program this information was derived from.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Parent loop of a node (`None` at the root).
    pub fn parent(&self, node: NodeId) -> Option<LoopId> {
        match node {
            NodeId::Loop(l) => self.loop_parent[l.index()],
            NodeId::Stmt(s) => self.stmt_parent[s.index()],
        }
    }

    /// Nesting depth of a loop (0 for top-level loops).
    pub fn loop_depth(&self, l: LoopId) -> usize {
        self.loop_depth[l.index()]
    }

    /// How many times the loop is *entered* over one program execution.
    pub fn loop_entries(&self, l: LoopId) -> u64 {
        self.loop_entries[l.index()]
    }

    /// Total iterations the loop body runs over one program execution
    /// (`entries × trip_count`).
    pub fn loop_iterations(&self, l: LoopId) -> u64 {
        self.loop_entries[l.index()] * self.program.loop_(l).trip_count()
    }

    /// Total executions of a statement over one program execution.
    pub fn stmt_executions(&self, s: StmtId) -> u64 {
        self.stmt_executions[s.index()]
    }

    /// Read/write totals for an array.
    pub fn access_counts(&self, a: ArrayId) -> AccessCounts {
        self.access_counts[a.index()]
    }

    /// Total accesses of one kind for an array.
    pub fn access_count(&self, a: ArrayId, kind: AccessKind) -> u64 {
        let c = self.access_counts(a);
        match kind {
            AccessKind::Read => c.reads,
            AccessKind::Write => c.writes,
        }
    }

    /// Enclosing loops of a node, outermost first.
    pub fn enclosing_loops(&self, node: NodeId) -> Vec<LoopId> {
        let mut path = Vec::new();
        let mut cur = self.parent(node);
        while let Some(l) = cur {
            path.push(l);
            cur = self.loop_parent[l.index()];
        }
        path.reverse();
        path
    }

    /// Whether `ancestor` encloses `node` (strictly; a loop does not enclose
    /// itself).
    pub fn encloses(&self, ancestor: LoopId, node: NodeId) -> bool {
        let mut cur = self.parent(node);
        while let Some(l) = cur {
            if l == ancestor {
                return true;
            }
            cur = self.loop_parent[l.index()];
        }
        false
    }

    /// All statements in the subtree rooted at `node` (program order).
    pub fn subtree_stmts(&self, node: NodeId) -> Vec<StmtId> {
        let mut out = Vec::new();
        self.collect_stmts(node, &mut out);
        out
    }

    fn collect_stmts(&self, node: NodeId, out: &mut Vec<StmtId>) {
        match node {
            NodeId::Stmt(s) => out.push(s),
            NodeId::Loop(l) => {
                for &child in &self.program.loop_(l).body {
                    self.collect_stmts(child, out);
                }
            }
        }
    }

    /// Statements in the subtree of `node` that access `array`, with the
    /// per-execution count of matching accesses.
    pub fn accessors_in_subtree(&self, node: NodeId, array: ArrayId) -> Vec<(StmtId, u64)> {
        self.subtree_stmts(node)
            .into_iter()
            .filter_map(|s| {
                let n = self
                    .program
                    .stmt(s)
                    .accesses
                    .iter()
                    .filter(|a| a.array == array)
                    .count() as u64;
                (n > 0).then_some((s, n))
            })
            .collect()
    }

    /// Arrays accessed anywhere in the subtree of `node`.
    pub fn arrays_in_subtree(&self, node: NodeId) -> Vec<ArrayId> {
        let mut seen = HashMap::new();
        for s in self.subtree_stmts(node) {
            for a in &self.program.stmt(s).accesses {
                seen.entry(a.array).or_insert(());
            }
        }
        let mut v: Vec<ArrayId> = seen.into_keys().collect();
        v.sort();
        v
    }

    /// Pure datapath cycles of one full execution of `node`'s subtree
    /// (compute cycles only — no memory latency, which depends on the layer
    /// assignment and is priced by the cost model).
    pub fn compute_cycles(&self, node: NodeId) -> u64 {
        match node {
            NodeId::Stmt(s) => self.program.stmt(s).compute_cycles,
            NodeId::Loop(l) => {
                let lp = self.program.loop_(l);
                let body: u64 = lp.body.iter().map(|&n| self.compute_cycles(n)).sum();
                lp.trip_count() * body
            }
        }
    }

    /// Memory accesses issued by one full execution of `node`'s subtree.
    pub fn subtree_accesses(&self, node: NodeId) -> u64 {
        match node {
            NodeId::Stmt(s) => self.program.stmt(s).accesses.len() as u64,
            NodeId::Loop(l) => {
                let lp = self.program.loop_(l);
                let body: u64 = lp.body.iter().map(|&n| self.subtree_accesses(n)).sum();
                lp.trip_count() * body
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::program::ElemType;

    /// Builds:
    /// ```text
    /// for i in 0..4:
    ///   S0: read a[i]            (2 cycles)
    ///   for j in 0..3:
    ///     S1: read a[i], write b[j]  (1 cycle)
    /// S2: read b[0]
    /// ```
    fn sample() -> (
        Program,
        ArrayId,
        ArrayId,
        LoopId,
        LoopId,
        StmtId,
        StmtId,
        StmtId,
    ) {
        let mut b = ProgramBuilder::new("sample");
        let a = b.array("a", &[16], ElemType::U8);
        let bb = b.array("b", &[8], ElemType::U8);
        let li = b.begin_loop("i", 0, 4, 1);
        let iv = b.var(li);
        let s0 = b
            .stmt("s0")
            .read(a, vec![iv.clone()])
            .compute_cycles(2)
            .finish();
        let lj = b.begin_loop("j", 0, 3, 1);
        let jv = b.var(lj);
        let s1 = b.stmt("s1").read(a, vec![iv]).write(bb, vec![jv]).finish();
        b.end_loop();
        b.end_loop();
        let s2 = b
            .stmt("s2")
            .read(bb, vec![crate::AffineExpr::zero()])
            .finish();
        (b.finish(), a, bb, li, lj, s0, s1, s2)
    }

    use crate::program::Program;

    #[test]
    fn parents_and_depths() {
        let (p, _, _, li, lj, s0, s1, s2) = sample();
        let info = p.info();
        assert_eq!(info.parent(NodeId::Loop(li)), None);
        assert_eq!(info.parent(NodeId::Loop(lj)), Some(li));
        assert_eq!(info.parent(NodeId::Stmt(s0)), Some(li));
        assert_eq!(info.parent(NodeId::Stmt(s1)), Some(lj));
        assert_eq!(info.parent(NodeId::Stmt(s2)), None);
        assert_eq!(info.loop_depth(li), 0);
        assert_eq!(info.loop_depth(lj), 1);
    }

    #[test]
    fn execution_counts() {
        let (p, _, _, li, lj, s0, s1, s2) = sample();
        let info = p.info();
        assert_eq!(info.loop_entries(li), 1);
        assert_eq!(info.loop_iterations(li), 4);
        assert_eq!(info.loop_entries(lj), 4);
        assert_eq!(info.loop_iterations(lj), 12);
        assert_eq!(info.stmt_executions(s0), 4);
        assert_eq!(info.stmt_executions(s1), 12);
        assert_eq!(info.stmt_executions(s2), 1);
    }

    #[test]
    fn access_totals() {
        let (p, a, bb, ..) = sample();
        let info = p.info();
        assert_eq!(
            info.access_counts(a),
            AccessCounts {
                reads: 4 + 12,
                writes: 0
            }
        );
        assert_eq!(
            info.access_counts(bb),
            AccessCounts {
                reads: 1,
                writes: 12
            }
        );
        assert_eq!(info.access_counts(bb).total(), 13);
    }

    #[test]
    fn enclosing_loop_paths() {
        let (p, _, _, li, lj, _, s1, s2) = sample();
        let info = p.info();
        assert_eq!(info.enclosing_loops(NodeId::Stmt(s1)), vec![li, lj]);
        assert_eq!(info.enclosing_loops(NodeId::Stmt(s2)), vec![]);
        assert!(info.encloses(li, NodeId::Stmt(s1)));
        assert!(info.encloses(lj, NodeId::Stmt(s1)));
        assert!(!info.encloses(lj, NodeId::Loop(li)));
        assert!(!info.encloses(li, NodeId::Loop(li)), "strict enclosure");
    }

    #[test]
    fn subtree_queries() {
        let (p, a, _, li, _, s0, s1, _) = sample();
        let info = p.info();
        assert_eq!(info.subtree_stmts(NodeId::Loop(li)), vec![s0, s1]);
        let acc = info.accessors_in_subtree(NodeId::Loop(li), a);
        assert_eq!(acc, vec![(s0, 1), (s1, 1)]);
        let arrays = info.arrays_in_subtree(NodeId::Loop(li));
        assert_eq!(arrays.len(), 2);
    }

    #[test]
    fn cycle_and_access_aggregation() {
        let (p, _, _, li, ..) = sample();
        let info = p.info();
        // per i-iteration: s0 (2 cycles) + 3 × s1 (1 cycle) = 5
        assert_eq!(info.compute_cycles(NodeId::Loop(li)), 4 * 5);
        // per i-iteration: 1 (s0) + 3 × 2 (s1) = 7 accesses
        assert_eq!(info.subtree_accesses(NodeId::Loop(li)), 4 * 7);
    }
}
