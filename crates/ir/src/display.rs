//! C-like pretty printing of programs.

use std::fmt;

use crate::ids::NodeId;
use crate::program::{AccessKind, Program};

impl fmt::Display for Program {
    /// Renders the program as pseudo-C, one construct per line.
    ///
    /// ```
    /// use mhla_ir::{ProgramBuilder, ElemType};
    /// let mut b = ProgramBuilder::new("p");
    /// let a = b.array("a", &[8], ElemType::U8);
    /// b.loop_scope("i", 0, 8, 1, |b, li| {
    ///     let iv = b.var(li);
    ///     b.stmt("s").read(a, vec![iv]).finish();
    /// });
    /// let text = b.finish().to_string();
    /// assert!(text.contains("for (i = 0; i < 8; i += 1)"));
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} {{", self.name())?;
        for (_, a) in self.arrays() {
            let dims: Vec<String> = a.dims.iter().map(|d| format!("[{d}]")).collect();
            writeln!(f, "  {} {}{};", a.elem, a.name, dims.join(""))?;
        }
        fn go(
            p: &Program,
            f: &mut fmt::Formatter<'_>,
            nodes: &[NodeId],
            depth: usize,
        ) -> fmt::Result {
            let pad = "  ".repeat(depth + 1);
            for &n in nodes {
                match n {
                    NodeId::Loop(l) => {
                        let lp = p.loop_(l);
                        writeln!(
                            f,
                            "{pad}for ({name} = {lo}; {name} < {hi}; {name} += {st}) {{",
                            name = lp.name,
                            lo = lp.lower,
                            hi = lp.upper,
                            st = lp.step
                        )?;
                        go(p, f, &lp.body, depth + 1)?;
                        writeln!(f, "{pad}}}")?;
                    }
                    NodeId::Stmt(s) => {
                        let st = p.stmt(s);
                        let mut parts = Vec::new();
                        for acc in &st.accesses {
                            let name = &p.array(acc.array).name;
                            let idx: Vec<String> = acc
                                .index
                                .iter()
                                .map(|e| format!("[{}]", pretty_expr(p, e)))
                                .collect();
                            let rw = match acc.kind {
                                AccessKind::Read => "R",
                                AccessKind::Write => "W",
                            };
                            parts.push(format!("{rw}:{name}{}", idx.join("")));
                        }
                        writeln!(
                            f,
                            "{pad}{}: {} // {} cycle(s)",
                            st.name,
                            parts.join(", "),
                            st.compute_cycles
                        )?;
                    }
                }
            }
            Ok(())
        }
        go(self, f, self.roots(), 0)?;
        writeln!(f, "}}")
    }
}

/// Formats an affine expression using loop *names* instead of raw ids.
fn pretty_expr(p: &Program, e: &crate::AffineExpr) -> String {
    let mut out = String::new();
    let mut first = true;
    for (l, c) in e.terms() {
        let name = &p.loop_(l).name;
        if first {
            match c {
                1 => out.push_str(name),
                -1 => out.push_str(&format!("-{name}")),
                _ => out.push_str(&format!("{c}*{name}")),
            }
            first = false;
        } else if c == 1 {
            out.push_str(&format!(" + {name}"));
        } else if c == -1 {
            out.push_str(&format!(" - {name}"));
        } else if c > 0 {
            out.push_str(&format!(" + {c}*{name}"));
        } else {
            out.push_str(&format!(" - {}*{name}", -c));
        }
    }
    let k = e.constant();
    if first {
        out.push_str(&k.to_string());
    } else if k > 0 {
        out.push_str(&format!(" + {k}"));
    } else if k < 0 {
        out.push_str(&format!(" - {}", -k));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::program::ElemType;

    #[test]
    fn prints_nested_loops_and_accesses() {
        let mut b = ProgramBuilder::new("me");
        let cur = b.array("cur", &[16, 16], ElemType::U8);
        let li = b.begin_loop("y", 0, 16, 1);
        let lj = b.begin_loop("x", 0, 16, 2);
        let (y, x) = (b.var(li), b.var(lj));
        b.stmt("sad")
            .read(cur, vec![y, x + 4])
            .compute_cycles(2)
            .finish();
        b.end_loop();
        b.end_loop();
        let text = b.finish().to_string();
        assert!(text.contains("program me {"), "{text}");
        assert!(text.contains("u8 cur[16][16];"), "{text}");
        assert!(text.contains("for (y = 0; y < 16; y += 1) {"), "{text}");
        assert!(text.contains("for (x = 0; x < 16; x += 2) {"), "{text}");
        assert!(
            text.contains("sad: R:cur[y][x + 4] // 2 cycle(s)"),
            "{text}"
        );
    }

    #[test]
    fn prints_negative_and_scaled_terms() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[64], ElemType::U8);
        let li = b.begin_loop("i", 0, 4, 1);
        let lj = b.begin_loop("j", 0, 4, 1);
        let (i, j) = (b.var(li), b.var(lj));
        b.stmt("s").read(a, vec![i * 16 - j + 3]).finish();
        b.end_loop();
        b.end_loop();
        let text = b.finish().to_string();
        assert!(text.contains("a[16*i - j + 3]"), "{text}");
    }
}
