//! Program structure: arrays, loops, statements, accesses.

use std::fmt;

use crate::analysis::ProgramInfo;
use crate::expr::AffineExpr;
use crate::ids::{ArrayId, LoopId, NodeId, StmtId};
use crate::timeline::Timeline;
use crate::validate::ValidateError;

/// Scalar element type of an array.
///
/// Only the storage width matters to MHLA; the enum exists so workloads can
/// document their data layout precisely.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ElemType {
    /// 8-bit integer (pixels).
    #[default]
    U8,
    /// 16-bit integer (audio samples, SAD accumulators).
    I16,
    /// 32-bit integer.
    I32,
    /// 32-bit IEEE float (filter coefficients).
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl ElemType {
    /// Storage size of one element in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            ElemType::U8 => 1,
            ElemType::I16 => 2,
            ElemType::I32 | ElemType::F32 => 4,
            ElemType::F64 => 8,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ElemType::U8 => "u8",
            ElemType::I16 => "i16",
            ElemType::I32 => "i32",
            ElemType::F32 => "f32",
            ElemType::F64 => "f64",
        };
        f.write_str(name)
    }
}

/// Declaration of a multi-dimensional array.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayDecl {
    /// Human-readable array name (unique within a program).
    pub name: String,
    /// Extent of each dimension, in elements. Row-major, outermost first.
    pub dims: Vec<u64>,
    /// Element type.
    pub elem: ElemType,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn elements(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Total storage footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.elements() * self.elem.bytes()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// Whether an access reads or writes its array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// The statement reads one element per execution.
    Read,
    /// The statement writes one element per execution.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// One array reference inside a statement.
///
/// Each execution of the owning statement touches exactly one element,
/// addressed by evaluating `index` under the current iterator values.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Access {
    /// The referenced array.
    pub array: ArrayId,
    /// Read or write.
    pub kind: AccessKind,
    /// One affine subscript per array dimension.
    pub index: Vec<AffineExpr>,
}

/// A straight-line statement with a fixed set of array accesses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Statement {
    /// Human-readable label.
    pub name: String,
    /// Array accesses performed by one execution.
    pub accesses: Vec<Access>,
    /// Pure datapath cycles per execution, *excluding* memory access time
    /// (the platform model adds per-access latencies on top).
    pub compute_cycles: u64,
}

/// A `for` loop with constant, statically known bounds.
///
/// Iteration values are `lower, lower+step, …` strictly below `upper`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Loop {
    /// Iterator name, e.g. `"y"`.
    pub name: String,
    /// Inclusive lower bound.
    pub lower: i64,
    /// Exclusive upper bound.
    pub upper: i64,
    /// Positive step.
    pub step: i64,
    /// Body in program order.
    pub body: Vec<Node>,
}

impl Loop {
    /// Number of iterations executed per entry of the loop.
    pub fn trip_count(&self) -> u64 {
        if self.upper <= self.lower || self.step <= 0 {
            0
        } else {
            ((self.upper - self.lower + self.step - 1) / self.step) as u64
        }
    }

    /// Value of the iterator in the last executed iteration, if any.
    pub fn last_value(&self) -> Option<i64> {
        let trips = self.trip_count();
        if trips == 0 {
            None
        } else {
            Some(self.lower + (trips as i64 - 1) * self.step)
        }
    }

    /// Distance between the first and last iterator value
    /// (`(trip_count - 1) · step`), or 0 for empty loops.
    pub fn span(&self) -> i64 {
        self.last_value().map_or(0, |last| last - self.lower)
    }
}

/// A node of the program tree.
pub type Node = NodeId;

/// A complete application kernel: arrays plus a tree of loops/statements.
///
/// `Program` is an immutable arena; construct one with
/// [`ProgramBuilder`](crate::ProgramBuilder) and query derived facts through
/// [`Program::info`].
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    pub(crate) name: String,
    pub(crate) arrays: Vec<ArrayDecl>,
    pub(crate) loops: Vec<Loop>,
    pub(crate) stmts: Vec<Statement>,
    pub(crate) roots: Vec<Node>,
}

impl Program {
    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All declared arrays.
    pub fn arrays(&self) -> impl Iterator<Item = (ArrayId, &ArrayDecl)> {
        self.arrays
            .iter()
            .enumerate()
            .map(|(i, a)| (ArrayId::from_index(i), a))
    }

    /// Looks up an array declaration.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// Looks up a loop.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn loop_(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// Looks up a statement.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn stmt(&self, id: StmtId) -> &Statement {
        &self.stmts[id.index()]
    }

    /// All loops.
    pub fn loops(&self) -> impl Iterator<Item = (LoopId, &Loop)> {
        self.loops
            .iter()
            .enumerate()
            .map(|(i, l)| (LoopId::from_index(i), l))
    }

    /// All statements.
    pub fn stmts(&self) -> impl Iterator<Item = (StmtId, &Statement)> {
        self.stmts
            .iter()
            .enumerate()
            .map(|(i, s)| (StmtId::from_index(i), s))
    }

    /// Top-level nodes in program order.
    pub fn roots(&self) -> &[Node] {
        &self.roots
    }

    /// Number of arrays.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Number of loops.
    pub fn loop_count(&self) -> usize {
        self.loops.len()
    }

    /// Number of statements.
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }

    /// Finds an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(ArrayId::from_index)
    }

    /// Computes derived structural information (parents, trip counts,
    /// access counts). The result borrows the program.
    pub fn info(&self) -> ProgramInfo<'_> {
        ProgramInfo::new(self)
    }

    /// Builds the sequential logical timeline of the program.
    pub fn timeline(&self) -> Timeline {
        Timeline::new(self)
    }

    /// Checks structural well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; see [`ValidateError`] for the
    /// possible failure classes.
    pub fn validate(&self) -> Result<(), ValidateError> {
        crate::validate::validate(self)
    }

    /// Walks the tree depth-first in program order, invoking `visit` for
    /// every node. The second argument is the nesting depth (0 at roots).
    pub fn walk(&self, mut visit: impl FnMut(NodeId, usize)) {
        fn go(p: &Program, nodes: &[Node], depth: usize, visit: &mut impl FnMut(NodeId, usize)) {
            for &n in nodes {
                visit(n, depth);
                if let NodeId::Loop(l) = n {
                    go(p, &p.loops[l.index()].body, depth + 1, visit);
                }
            }
        }
        go(self, &self.roots, 0, &mut visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn elem_type_bytes() {
        assert_eq!(ElemType::U8.bytes(), 1);
        assert_eq!(ElemType::I16.bytes(), 2);
        assert_eq!(ElemType::I32.bytes(), 4);
        assert_eq!(ElemType::F32.bytes(), 4);
        assert_eq!(ElemType::F64.bytes(), 8);
    }

    #[test]
    fn array_decl_footprint() {
        let a = ArrayDecl {
            name: "frame".into(),
            dims: vec![144, 176],
            elem: ElemType::U8,
        };
        assert_eq!(a.elements(), 144 * 176);
        assert_eq!(a.bytes(), 144 * 176);
        assert_eq!(a.rank(), 2);
    }

    #[test]
    fn trip_count_rounding() {
        let mk = |lower, upper, step| Loop {
            name: "i".into(),
            lower,
            upper,
            step,
            body: vec![],
        };
        assert_eq!(mk(0, 10, 1).trip_count(), 10);
        assert_eq!(mk(0, 10, 3).trip_count(), 4);
        assert_eq!(mk(0, 10, 16).trip_count(), 1);
        assert_eq!(mk(5, 5, 1).trip_count(), 0);
        assert_eq!(mk(8, 5, 1).trip_count(), 0);
        assert_eq!(mk(-4, 4, 2).trip_count(), 4);
    }

    #[test]
    fn loop_span_and_last_value() {
        let l = Loop {
            name: "i".into(),
            lower: 0,
            upper: 10,
            step: 3,
            body: vec![],
        };
        assert_eq!(l.last_value(), Some(9));
        assert_eq!(l.span(), 9);
        let empty = Loop {
            name: "i".into(),
            lower: 3,
            upper: 3,
            step: 1,
            body: vec![],
        };
        assert_eq!(empty.last_value(), None);
        assert_eq!(empty.span(), 0);
    }

    #[test]
    fn walk_visits_in_program_order() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("a", &[8], ElemType::U8);
        let l0 = b.begin_loop("i", 0, 4, 1);
        let i = b.var(l0);
        b.stmt("s0").read(a, vec![i.clone()]).finish();
        let l1 = b.begin_loop("j", 0, 2, 1);
        b.stmt("s1").read(a, vec![i]).finish();
        b.end_loop();
        b.end_loop();
        let p = b.finish();

        let mut order = Vec::new();
        p.walk(|n, d| order.push((n.to_string(), d)));
        assert_eq!(
            order,
            vec![
                ("L0".to_string(), 0),
                ("S0".to_string(), 1),
                ("L1".to_string(), 1),
                ("S1".to_string(), 2),
            ]
        );
        let _ = l1;
    }

    #[test]
    fn array_by_name_lookup() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("alpha", &[4], ElemType::U8);
        let p = b.finish();
        assert_eq!(p.array_by_name("alpha"), Some(a));
        assert_eq!(p.array_by_name("beta"), None);
    }
}
