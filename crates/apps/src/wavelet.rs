//! Two-level 2-D discrete wavelet transform (5-tap analysis filter).
//!
//! Each level runs a horizontal filtering pass (producing low/high bands
//! into a temporary) and a vertical pass (producing the four subbands).
//! The second level recurses on the LL band — a quarter-size internal
//! array, a natural candidate for on-chip homing.

use mhla_ir::{ElemType, Program, ProgramBuilder};

use crate::{Application, Domain};

/// Kernel dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Params {
    /// Image width (must be divisible by 4 for two levels).
    pub width: u64,
    /// Image height (must be divisible by 4).
    pub height: u64,
    /// Filter taps (odd, ≥ 3).
    pub taps: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 256,
            height: 256,
            taps: 5,
        }
    }
}

/// Builds one analysis level: `src` (h×w) → `tmp` (h×w) → `dst` (h/2 rows
/// of w/2 low + w/2 high columns modeled as an h/2 × w array).
#[allow(clippy::too_many_arguments)]
fn level(
    b: &mut ProgramBuilder,
    name: &str,
    src: mhla_ir::ArrayId,
    tmp: mhla_ir::ArrayId,
    dst: mhla_ir::ArrayId,
    h: i64,
    w: i64,
    taps: i64,
) {
    // Horizontal pass: every output column filters `taps` input columns.
    let lhy = b.begin_loop(format!("{name}_hy"), 0, h, 1);
    let lhx = b.begin_loop(format!("{name}_hx"), 0, w / 2 - taps / 2, 1);
    let lhk = b.begin_loop(format!("{name}_hk"), 0, taps, 1);
    let (y, x, k) = (b.var(lhy), b.var(lhx), b.var(lhk));
    b.stmt(format!("{name}_h"))
        .read(src, vec![y.clone(), x.clone() * 2 + k])
        .write(tmp, vec![y, x])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();

    // Vertical pass over the temporary: sliding `taps`-row band.
    let lvy = b.begin_loop(format!("{name}_vy"), 0, h / 2 - taps / 2, 1);
    let lvx = b.begin_loop(format!("{name}_vx"), 0, w / 2, 1);
    let lvk = b.begin_loop(format!("{name}_vk"), 0, taps, 1);
    let (y, x, k) = (b.var(lvy), b.var(lvx), b.var(lvk));
    b.stmt(format!("{name}_v"))
        .read(tmp, vec![y.clone() * 2 + k, x.clone()])
        .write(dst, vec![y, x])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();
}

/// Builds the kernel.
///
/// # Panics
///
/// Panics unless dimensions support two decimation levels and the filter
/// is odd-length.
pub fn program(p: Params) -> Program {
    assert!(
        p.width.is_multiple_of(4) && p.height.is_multiple_of(4),
        "two levels need multiples of 4"
    );
    assert!(
        p.taps % 2 == 1 && p.taps >= 3,
        "analysis filter must be odd"
    );
    let (w, h, t) = (p.width as i64, p.height as i64, p.taps as i64);

    let mut b = ProgramBuilder::new("wavelet");
    let img = b.array("img", &[p.height, p.width], ElemType::I16);
    let tmp1 = b.array("tmp1", &[p.height, p.width / 2], ElemType::I16);
    let ll1 = b.array("ll1", &[p.height / 2, p.width / 2], ElemType::I16);
    let tmp2 = b.array("tmp2", &[p.height / 2, p.width / 4], ElemType::I16);
    let ll2 = b.array("ll2", &[p.height / 4, p.width / 4], ElemType::I16);

    level(&mut b, "l1", img, tmp1, ll1, h, w, t);
    level(&mut b, "l2", ll1, tmp2, ll2, h / 2, w / 2, t);
    b.finish()
}

/// The application at default (256²) size.
pub fn app() -> Application {
    Application {
        program: program(Params::default()),
        domain: Domain::ImageProcessing,
        default_scratchpad: 8 * 1024,
        description: "two-level 2-D DWT, 5-tap analysis filter, 256x256",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_outputs_are_internal_temporaries() {
        let prog = program(Params::default());
        let classes = mhla_core::classify_arrays(&prog, &[]);
        for name in ["tmp1", "ll1", "tmp2"] {
            let a = prog.array_by_name(name).unwrap();
            assert_eq!(
                classes[a.index()],
                mhla_core::ArrayClass::Internal,
                "{name}"
            );
        }
        let img = prog.array_by_name("img").unwrap();
        assert_eq!(classes[img.index()], mhla_core::ArrayClass::External);
    }

    #[test]
    fn second_level_is_a_quarter_of_the_first() {
        let prog = program(Params::default());
        let info = prog.info();
        let img = prog.array_by_name("img").unwrap();
        let ll1 = prog.array_by_name("ll1").unwrap();
        let r1 = info.access_counts(img).reads;
        let r2 = info.access_counts(ll1).reads;
        // Same nest shape at half the linear size → ~quarter the reads.
        let ratio = r1 as f64 / r2 as f64;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn horizontal_window_slides_by_two() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let img = prog.array_by_name("img").unwrap();
        let hx = prog
            .loops()
            .find(|(_, l)| l.name == "l1_hx")
            .map(|(id, _)| id)
            .unwrap();
        let cc = reuse.array(img).at(hx).unwrap();
        // One output column reads `taps` consecutive columns; decimation
        // advances the window by 2.
        assert_eq!(cc.footprint.widths, vec![1, 5]);
        assert_eq!(cc.footprint.shifts, vec![0, 2]);
    }
}
