//! Audio FIR filter bank.
//!
//! A bank of FIR filters processes a sample stream: for each band and each
//! output sample, `taps` coefficient/sample products are accumulated. The
//! per-band coefficient vectors are re-read for every sample (huge reuse),
//! and the signal offers the canonical one-sample sliding window.

use mhla_ir::{ElemType, Program, ProgramBuilder};

use crate::{Application, Domain};

/// Kernel dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Params {
    /// Number of filter bands.
    pub bands: u64,
    /// Samples per processing frame.
    pub samples: u64,
    /// Filter length.
    pub taps: u64,
}

impl Default for Params {
    /// An 8-band, 64-tap bank over a 4096-sample frame (~0.1 s at 44 kHz).
    fn default() -> Self {
        Params {
            bands: 8,
            samples: 4096,
            taps: 64,
        }
    }
}

/// Builds the kernel.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn program(p: Params) -> Program {
    assert!(p.bands > 0 && p.samples > 0 && p.taps > 0, "empty bank");
    let mut b = ProgramBuilder::new("fir_bank");
    let signal = b.array("signal", &[p.samples + p.taps], ElemType::I16);
    let coef = b.array("coef", &[p.bands, p.taps], ElemType::I16);
    let out = b.array("out", &[p.bands, p.samples], ElemType::I16);

    let lb = b.begin_loop("band", 0, p.bands as i64, 1);
    let ln = b.begin_loop("n", 0, p.samples as i64, 1);
    let lk = b.begin_loop("k", 0, p.taps as i64, 1);
    let (band, n, k) = (b.var(lb), b.var(ln), b.var(lk));
    b.stmt("mac")
        .read(signal, vec![n.clone() + k.clone()])
        .read(coef, vec![band.clone(), k])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.stmt("store")
        .write(out, vec![band, n])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.end_loop();
    b.finish()
}

/// The application at default size.
pub fn app() -> Application {
    Application {
        program: program(Params::default()),
        domain: Domain::AudioProcessing,
        default_scratchpad: 2 * 1024,
        description: "8-band 64-tap FIR filter bank over a 4096-sample frame",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_band_coefficients_are_reused_per_sample() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let coef = prog.array_by_name("coef").unwrap();
        let band = prog
            .loops()
            .find(|(_, l)| l.name == "band")
            .map(|(id, _)| id)
            .unwrap();
        let cc = reuse.array(coef).at(band).unwrap();
        assert_eq!(cc.elements, 64, "one band's taps");
        assert_eq!(cc.entries, 8);
        assert_eq!(cc.reuse_factor(), 4096.0);
    }

    #[test]
    fn signal_window_slides_one_sample() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let signal = prog.array_by_name("signal").unwrap();
        let n = prog
            .loops()
            .find(|(_, l)| l.name == "n")
            .map(|(id, _)| id)
            .unwrap();
        let cc = reuse.array(signal).at(n).unwrap();
        assert_eq!(cc.footprint.widths, vec![64]);
        assert_eq!(cc.footprint.delta_elements(), 1);
        // Sliding updates make the refill negligible: 64 + 4095 elements
        // per band pass instead of 64 × 4096.
        assert!(cc.transfers_delta < cc.transfers_full / 30);
    }

    #[test]
    fn output_stream_is_external() {
        let prog = program(Params::default());
        let classes = mhla_core::classify_arrays(&prog, &[]);
        let out = prog.array_by_name("out").unwrap();
        assert_eq!(classes[out.index()], mhla_core::ArrayClass::External);
    }
}
