//! LPC voice coder front-end: autocorrelation + Levinson–Durbin recursion
//! + residual filtering, per speech frame.
//!
//! The autocorrelation re-reads each frame window `order+1` times; the
//! small per-frame arrays (autocorrelation lags, LPC coefficients) are
//! internal temporaries that live comfortably on-chip.

use mhla_ir::{ElemType, Program, ProgramBuilder};

use crate::{Application, Domain};

/// Kernel dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Params {
    /// Number of speech frames processed.
    pub frames: u64,
    /// Samples per frame.
    pub frame_len: u64,
    /// LPC order.
    pub order: u64,
}

impl Default for Params {
    /// 50 frames of 160 samples (8 kHz, 20 ms), order-10 LPC.
    fn default() -> Self {
        Params {
            frames: 50,
            frame_len: 160,
            order: 10,
        }
    }
}

/// Builds the kernel.
///
/// # Panics
///
/// Panics if the order reaches the frame length.
pub fn program(p: Params) -> Program {
    assert!(
        p.order < p.frame_len,
        "LPC order must be below frame length"
    );
    let (frames, n, m) = (p.frames as i64, p.frame_len as i64, p.order as i64);

    let mut b = ProgramBuilder::new("lpc_voice");
    let speech = b.array("speech", &[p.frames * p.frame_len + p.order], ElemType::I16);
    let autoc = b.array("autoc", &[p.order + 1], ElemType::I32);
    let lpc = b.array("lpc", &[p.order + 1], ElemType::I32);
    let refl = b.array("refl", &[p.order + 1], ElemType::I32);
    let resid = b.array("resid", &[p.frames * p.frame_len], ElemType::I16);

    let lf = b.begin_loop("frame", 0, frames, 1);
    let f = b.var(lf);

    // Autocorrelation: lag 0..=order over the frame window.
    let ll = b.begin_loop("lag", 0, m + 1, 1);
    let ls = b.begin_loop("s", 0, n, 1);
    let (lag, s) = (b.var(ll), b.var(ls));
    b.stmt("autocorr")
        .read(speech, vec![f.clone() * n + s.clone()])
        .read(speech, vec![f.clone() * n + s + lag.clone()])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.stmt("autocorr_store")
        .write(autoc, vec![lag])
        .compute_cycles(1)
        .finish();
    b.end_loop();

    // Levinson–Durbin recursion: order × order triangular updates.
    let li = b.begin_loop("ord", 0, m, 1);
    let i = b.var(li);
    b.stmt("reflection")
        .read(autoc, vec![i.clone() + 1])
        .read(lpc, vec![i.clone()])
        .write(refl, vec![i.clone()])
        .compute_cycles(8) // divide
        .finish();
    let lj = b.begin_loop("upd", 0, m, 1);
    let j = b.var(lj);
    b.stmt("update")
        .read(lpc, vec![j.clone()])
        .read(refl, vec![i.clone()])
        .write(lpc, vec![j])
        .compute_cycles(3)
        .finish();
    b.end_loop();
    b.end_loop();

    // Residual: inverse-filter the frame with the LPC coefficients.
    let lr = b.begin_loop("r", 0, n, 1);
    let lk = b.begin_loop("k", 0, m + 1, 1);
    let (r, k) = (b.var(lr), b.var(lk));
    b.stmt("filter")
        .read(speech, vec![f.clone() * n + r.clone() + k.clone()])
        .read(lpc, vec![k])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.stmt("resid_store")
        .write(resid, vec![f * n + r])
        .compute_cycles(1)
        .finish();
    b.end_loop();

    b.end_loop(); // frame
    b.finish()
}

/// The application at default size.
pub fn app() -> Application {
    Application {
        program: program(Params::default()),
        domain: Domain::AudioProcessing,
        default_scratchpad: 2 * 1024,
        description: "LPC voice coder: autocorrelation + Levinson-Durbin + residual",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_window_is_reused_across_lags() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let speech = prog.array_by_name("speech").unwrap();
        let frame = prog
            .loops()
            .find(|(_, l)| l.name == "frame")
            .map(|(id, _)| id)
            .unwrap();
        let cc = reuse.array(speech).at(frame).unwrap();
        // One frame touches frame_len + order samples, re-read by 11 lags,
        // the residual pass and both autocorrelation operands.
        assert_eq!(cc.footprint.widths, vec![170]);
        assert!(cc.reuse_factor() > 10.0);
    }

    #[test]
    fn lpc_state_is_internal() {
        let prog = program(Params::default());
        let classes = mhla_core::classify_arrays(&prog, &[]);
        for name in ["autoc", "refl"] {
            let a = prog.array_by_name(name).unwrap();
            assert_eq!(
                classes[a.index()],
                mhla_core::ArrayClass::Internal,
                "{name}"
            );
        }
    }

    #[test]
    fn durbin_recursion_writes_block_prefetching() {
        // lpc is read AND written inside the frame loop: no copy of lpc may
        // be hoisted across it.
        let prog = program(Params::default());
        let info = prog.info();
        let lpc = prog.array_by_name("lpc").unwrap();
        let c = info.access_counts(lpc);
        assert!(c.writes > 0);
        assert!(c.reads > c.writes);
    }
}
