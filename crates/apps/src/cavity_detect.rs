//! Cavity detection in medical images — the classic DTSE demonstrator.
//!
//! Four passes over the image, each producing a temporary consumed by the
//! next: Gaussian blur (horizontal then vertical), gradient magnitude
//! ("compute edges"), and max-thresholding. The row-window reuse (each
//! vertical filter re-reads a 3-row band that slides one row per
//! iteration) and the pass-to-pass temporaries are what MHLA exploits.

use mhla_ir::{ElemType, Program, ProgramBuilder};

use crate::{Application, Domain};

/// Kernel dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Params {
    /// Image width in pixels.
    pub width: u64,
    /// Image height in pixels.
    pub height: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 320,
            height: 240,
        }
    }
}

/// Builds the kernel.
///
/// # Panics
///
/// Panics if the image is smaller than the 3-pixel filter support.
pub fn program(p: Params) -> Program {
    assert!(p.width >= 3 && p.height >= 3, "image below filter support");
    let (w, h) = (p.width as i64, p.height as i64);

    let mut b = ProgramBuilder::new("cavity_detect");
    let img = b.array("img", &[p.height, p.width], ElemType::U8);
    let gauss_h = b.array("gauss_h", &[p.height, p.width], ElemType::U8);
    let gauss = b.array("gauss", &[p.height, p.width], ElemType::U8);
    let edge = b.array("edge", &[p.height, p.width], ElemType::U8);
    let out = b.array("label", &[p.height, p.width], ElemType::U8);

    // Pass 1: horizontal 1x3 blur.
    let l1y = b.begin_loop("hy", 0, h, 1);
    let l1x = b.begin_loop("hx", 1, w - 1, 1);
    let (y, x) = (b.var(l1y), b.var(l1x));
    b.stmt("blur_h")
        .read(img, vec![y.clone(), x.clone() - 1])
        .read(img, vec![y.clone(), x.clone()])
        .read(img, vec![y.clone(), x.clone() + 1])
        .write(gauss_h, vec![y, x])
        .compute_cycles(6)
        .finish();
    b.end_loop();
    b.end_loop();

    // Pass 2: vertical 3x1 blur (sliding 3-row band of gauss_h).
    let l2y = b.begin_loop("vy", 1, h - 1, 1);
    let l2x = b.begin_loop("vx", 0, w, 1);
    let (y, x) = (b.var(l2y), b.var(l2x));
    b.stmt("blur_v")
        .read(gauss_h, vec![y.clone() - 1, x.clone()])
        .read(gauss_h, vec![y.clone(), x.clone()])
        .read(gauss_h, vec![y.clone() + 1, x.clone()])
        .write(gauss, vec![y, x])
        .compute_cycles(6)
        .finish();
    b.end_loop();
    b.end_loop();

    // Pass 3: gradient magnitude over a 3x3 neighbourhood.
    let l3y = b.begin_loop("gy", 1, h - 1, 1);
    let l3x = b.begin_loop("gx", 1, w - 1, 1);
    let (y, x) = (b.var(l3y), b.var(l3x));
    b.stmt("gradient")
        .read(gauss, vec![y.clone() - 1, x.clone()])
        .read(gauss, vec![y.clone() + 1, x.clone()])
        .read(gauss, vec![y.clone(), x.clone() - 1])
        .read(gauss, vec![y.clone(), x.clone() + 1])
        .write(edge, vec![y, x])
        .compute_cycles(8)
        .finish();
    b.end_loop();
    b.end_loop();

    // Pass 4: adaptive threshold against a sliding row maximum.
    let l4y = b.begin_loop("ty", 0, h, 1);
    let l4x = b.begin_loop("tx", 0, w, 1);
    let (y, x) = (b.var(l4y), b.var(l4x));
    b.stmt("threshold")
        .read(edge, vec![y.clone(), x.clone()])
        .write(out, vec![y, x])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.end_loop();
    b.finish()
}

/// The application at default (QVGA) size.
pub fn app() -> Application {
    Application {
        program: program(Params::default()),
        domain: Domain::ImageProcessing,
        default_scratchpad: 8 * 1024,
        description: "cavity detection: blur, gradient, threshold passes, QVGA",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_temporaries_are_internal() {
        let prog = program(Params::default());
        let classes = mhla_core::classify_arrays(&prog, &[]);
        for name in ["gauss_h", "gauss", "edge"] {
            let a = prog.array_by_name(name).unwrap();
            assert_eq!(
                classes[a.index()],
                mhla_core::ArrayClass::Internal,
                "{name}"
            );
        }
    }

    #[test]
    fn vertical_blur_band_slides_one_row() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let gauss_h = prog.array_by_name("gauss_h").unwrap();
        let vy = prog
            .loops()
            .find(|(_, l)| l.name == "vy")
            .map(|(id, _)| id)
            .unwrap();
        let cc = reuse.array(gauss_h).at(vy).unwrap();
        assert_eq!(cc.footprint.widths, vec![3, 320], "3-row band");
        assert_eq!(cc.footprint.shifts, vec![1, 0]);
        assert_eq!(cc.footprint.delta_elements(), 320, "one new row per step");
        assert!(cc.transfers_delta < cc.transfers_full / 2);
    }

    #[test]
    fn each_pass_reads_the_previous_output() {
        let prog = program(Params::default());
        let info = prog.info();
        let gauss = prog.array_by_name("gauss").unwrap();
        let c = info.access_counts(gauss);
        assert!(c.reads > 0 && c.writes > 0);
        let tl = prog.timeline();
        // gauss is written (pass 2) before it is read (pass 3).
        let span = tl.array_span(gauss).unwrap();
        assert!(!span.is_empty());
    }
}
