//! JPEG-style still-image encoder: level shift, 8×8 DCT, quantization and
//! zig-zag reordering.
//!
//! Differences from the video encoder loop: no motion compensation (pure
//! intra coding), an extra zig-zag pass driven by a lookup table, and a
//! larger (VGA-class) input image, which makes the per-block staging of the
//! input tile matter more.

use mhla_ir::{ElemType, Program, ProgramBuilder};

use crate::{Application, Domain};

/// Kernel dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Params {
    /// Image width in pixels.
    pub width: u64,
    /// Image height in pixels.
    pub height: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 352,
            height: 288,
        }
    }
}

/// Builds the kernel.
///
/// # Panics
///
/// Panics unless the image tiles into 8×8 blocks.
pub fn program(p: Params) -> Program {
    assert!(
        p.width.is_multiple_of(8) && p.height.is_multiple_of(8),
        "image must tile into 8x8 blocks"
    );
    let bx = (p.width / 8) as i64;
    let by = (p.height / 8) as i64;

    let mut b = ProgramBuilder::new("jpeg_enc");
    let img = b.array("img", &[p.height, p.width], ElemType::U8);
    let blkbuf = b.array("blkbuf", &[8, 8], ElemType::I16);
    let tmp = b.array("dct_tmp", &[8, 8], ElemType::I16);
    let coef = b.array("coef", &[8, 8], ElemType::I16);
    let qtab = b.array("qtab", &[8, 8], ElemType::I16);
    let zz = b.array("zigzag", &[64], ElemType::I16);
    let cos = b.array("cos_tab", &[8, 8], ElemType::I16);
    let out = b.array("out", &[p.height, p.width], ElemType::I16);

    let lby = b.begin_loop("blky", 0, by, 1);
    let lbx = b.begin_loop("blkx", 0, bx, 1);
    let (blky, blkx) = (b.var(lby), b.var(lbx));

    // Level shift: copy the tile into a block buffer, centering at zero.
    let l0y = b.begin_loop("lsy", 0, 8, 1);
    let l0x = b.begin_loop("lsx", 0, 8, 1);
    let (y, x) = (b.var(l0y), b.var(l0x));
    b.stmt("shift")
        .read(
            img,
            vec![blky.clone() * 8 + y.clone(), blkx.clone() * 8 + x.clone()],
        )
        .write(blkbuf, vec![y, x])
        .compute_cycles(2)
        .finish();
    b.end_loop();
    b.end_loop();

    // Separable DCT, row then column pass.
    let l1y = b.begin_loop("dry", 0, 8, 1);
    let l1x = b.begin_loop("drx", 0, 8, 1);
    let l1k = b.begin_loop("drk", 0, 8, 1);
    let (y, x, k) = (b.var(l1y), b.var(l1x), b.var(l1k));
    b.stmt("dct_row")
        .read(blkbuf, vec![y.clone(), k.clone()])
        .read(cos, vec![k, x.clone()])
        .write(tmp, vec![y, x])
        .compute_cycles(5)
        .finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();

    let l2y = b.begin_loop("dcy", 0, 8, 1);
    let l2x = b.begin_loop("dcx", 0, 8, 1);
    let l2k = b.begin_loop("dck", 0, 8, 1);
    let (y, x, k) = (b.var(l2y), b.var(l2x), b.var(l2k));
    b.stmt("dct_col")
        .read(cos, vec![y.clone(), k.clone()])
        .read(tmp, vec![k, x.clone()])
        .write(coef, vec![y, x])
        .compute_cycles(5)
        .finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();

    // Quantize + zig-zag: the zig-zag table supplies the scan order (its
    // *values* pick the destination; geometrically every coefficient is
    // read once and one output element per position is written).
    let l3y = b.begin_loop("zzy", 0, 8, 1);
    let l3x = b.begin_loop("zzx", 0, 8, 1);
    let (y, x) = (b.var(l3y), b.var(l3x));
    b.stmt("quant_zz")
        .read(coef, vec![y.clone(), x.clone()])
        .read(qtab, vec![y.clone(), x.clone()])
        .read(zz, vec![y.clone() * 8 + x.clone()])
        .write(out, vec![blky * 8 + y, blkx * 8 + x])
        .compute_cycles(8)
        .finish();
    b.end_loop();
    b.end_loop();

    b.end_loop(); // blkx
    b.end_loop(); // blky
    b.finish()
}

/// The application at default (CIF) size.
pub fn app() -> Application {
    Application {
        program: program(Params::default()),
        domain: Domain::ImageProcessing,
        default_scratchpad: 8 * 1024,
        description: "JPEG-style 8x8 DCT + quantization + zig-zag encoder, CIF",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_table_is_fully_reused() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let zz = prog.array_by_name("zigzag").unwrap();
        let whole = reuse.array(zz).whole_array().unwrap();
        let blocks = (352 / 8) * (288 / 8);
        assert_eq!(whole.accesses_served, blocks * 64);
        assert_eq!(whole.transfers_full, 64);
        assert_eq!(whole.reuse_factor(), blocks as f64);
    }

    #[test]
    fn the_image_tile_candidate_is_64_bytes() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let img = prog.array_by_name("img").unwrap();
        let blkx = prog
            .loops()
            .find(|(_, l)| l.name == "blkx")
            .map(|(id, _)| id)
            .unwrap();
        let cc = reuse.array(img).at(blkx).unwrap();
        assert_eq!(cc.elements, 64);
        assert_eq!(cc.bytes, 64);
    }

    #[test]
    fn out_is_write_only_external() {
        let prog = program(Params::default());
        let classes = mhla_core::classify_arrays(&prog, &[]);
        let out = prog.array_by_name("out").unwrap();
        assert_eq!(classes[out.index()], mhla_core::ArrayClass::External);
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        assert!(reuse.array(out).candidates().is_empty());
    }
}
