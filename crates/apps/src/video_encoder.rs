//! MPEG-2-style encoder inner loop: motion compensation, 8×8 DCT,
//! quantization.
//!
//! Per macroblock: the predictor block is fetched from the reconstructed
//! reference frame, the residual is computed and transformed with a
//! separable 8×8 DCT (row pass into a temporary, column pass into
//! coefficients), then quantized against a quantization matrix that is
//! re-read for every block — a tiny, intensely reused table that MHLA
//! stages on-chip immediately.

use mhla_ir::{ElemType, Program, ProgramBuilder};

use crate::{Application, Domain};

/// Kernel dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Params {
    /// Frame width in pixels.
    pub width: u64,
    /// Frame height in pixels.
    pub height: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 176,
            height: 144,
        }
    }
}

/// Builds the kernel.
///
/// # Panics
///
/// Panics unless the frame tiles into 8×8 blocks.
pub fn program(p: Params) -> Program {
    assert!(
        p.width.is_multiple_of(8) && p.height.is_multiple_of(8),
        "frame must tile into 8x8 blocks"
    );
    let bx = (p.width / 8) as i64;
    let by = (p.height / 8) as i64;

    let mut b = ProgramBuilder::new("video_encoder");
    let cur = b.array("cur", &[p.height, p.width], ElemType::U8);
    let refr = b.array("ref", &[p.height + 8, p.width + 8], ElemType::U8);
    let diff = b.array("diff", &[8, 8], ElemType::I16);
    let tmp = b.array("dct_tmp", &[8, 8], ElemType::I16);
    let coef = b.array("coef", &[8, 8], ElemType::I16);
    let qmat = b.array("qmat", &[8, 8], ElemType::I16);
    let out = b.array("out", &[p.height, p.width], ElemType::I16);
    let cos = b.array("cos_tab", &[8, 8], ElemType::I16);

    let lby = b.begin_loop("blky", 0, by, 1);
    let lbx = b.begin_loop("blkx", 0, bx, 1);
    let (blky, blkx) = (b.var(lby), b.var(lbx));

    // Motion compensation: residual = cur - ref (predictor offset by the
    // motion vector; modelled at a fixed 4,4 displacement — the geometry,
    // not the values, drives MHLA).
    let l1y = b.begin_loop("mcy", 0, 8, 1);
    let l1x = b.begin_loop("mcx", 0, 8, 1);
    let (y, x) = (b.var(l1y), b.var(l1x));
    b.stmt("mc")
        .read(
            cur,
            vec![blky.clone() * 8 + y.clone(), blkx.clone() * 8 + x.clone()],
        )
        .read(
            refr,
            vec![
                blky.clone() * 8 + y.clone() + 4,
                blkx.clone() * 8 + x.clone() + 4,
            ],
        )
        .write(diff, vec![y, x])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.end_loop();

    // DCT row pass: tmp = diff · C^T (8 MACs per output).
    let l2y = b.begin_loop("dcty", 0, 8, 1);
    let l2x = b.begin_loop("dctx", 0, 8, 1);
    let l2k = b.begin_loop("dctk", 0, 8, 1);
    let (y, x, k) = (b.var(l2y), b.var(l2x), b.var(l2k));
    b.stmt("dct_row")
        .read(diff, vec![y.clone(), k.clone()])
        .read(cos, vec![k, x.clone()])
        .write(tmp, vec![y, x])
        .compute_cycles(5)
        .finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();

    // DCT column pass: coef = C · tmp.
    let l3y = b.begin_loop("dcy", 0, 8, 1);
    let l3x = b.begin_loop("dcx", 0, 8, 1);
    let l3k = b.begin_loop("dck", 0, 8, 1);
    let (y, x, k) = (b.var(l3y), b.var(l3x), b.var(l3k));
    b.stmt("dct_col")
        .read(cos, vec![y.clone(), k.clone()])
        .read(tmp, vec![k, x.clone()])
        .write(coef, vec![y, x])
        .compute_cycles(5)
        .finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();

    // Quantization: out = coef / qmat, written to the frame-sized stream.
    let l4y = b.begin_loop("qy", 0, 8, 1);
    let l4x = b.begin_loop("qx", 0, 8, 1);
    let (y, x) = (b.var(l4y), b.var(l4x));
    b.stmt("quant")
        .read(coef, vec![y.clone(), x.clone()])
        .read(qmat, vec![y.clone(), x.clone()])
        .write(out, vec![blky * 8 + y, blkx * 8 + x])
        .compute_cycles(8) // divide + clamp
        .finish();
    b.end_loop();
    b.end_loop();

    b.end_loop(); // blkx
    b.end_loop(); // blky
    b.finish()
}

/// The application at default (QCIF) size.
pub fn app() -> Application {
    Application {
        program: program(Params::default()),
        domain: Domain::VideoEncoding,
        default_scratchpad: 8 * 1024,
        description: "MPEG-2-style MC + 8x8 DCT + quantization block loop, QCIF",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_temporaries_are_internal() {
        let prog = program(Params::default());
        let classes = mhla_core::classify_arrays(&prog, &[]);
        for name in ["diff", "dct_tmp", "coef"] {
            let a = prog.array_by_name(name).unwrap();
            assert_eq!(
                classes[a.index()],
                mhla_core::ArrayClass::Internal,
                "{name}"
            );
        }
        for name in ["cur", "ref", "qmat", "out", "cos_tab"] {
            let a = prog.array_by_name(name).unwrap();
            assert_eq!(
                classes[a.index()],
                mhla_core::ArrayClass::External,
                "{name}"
            );
        }
    }

    #[test]
    fn tables_have_huge_reuse() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let qmat = prog.array_by_name("qmat").unwrap();
        let whole = reuse.array(qmat).whole_array().unwrap();
        // 64 reads per block × 396 blocks over a single 64-element fill.
        assert_eq!(whole.reuse_factor(), 396.0);
        let cos = prog.array_by_name("cos_tab").unwrap();
        let whole_cos = reuse.array(cos).whole_array().unwrap();
        assert!(whole_cos.reuse_factor() > 1000.0);
    }

    #[test]
    fn dct_dominates_the_access_counts() {
        let prog = program(Params::default());
        let info = prog.info();
        let blocks = (176 / 8) * (144 / 8);
        let tmp = prog.array_by_name("dct_tmp").unwrap();
        // Row pass writes 64, column pass reads 8 per output × 64.
        assert_eq!(info.access_counts(tmp).writes, blocks * 8 * 8 * 8);
        assert_eq!(info.access_counts(tmp).reads, blocks * 8 * 8 * 8);
    }
}
