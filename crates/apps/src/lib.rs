//! # mhla-apps — the nine evaluation workloads
//!
//! The paper demonstrates MHLA on "nine real life applications of motion
//! estimation, video encoding, image and audio processing domain". Those
//! industrial codes are not distributed; this crate provides nine
//! synthetic-but-realistic kernels from exactly those domains, with the
//! loop structure and data-reuse patterns that drive the technique (block
//! tiling, sliding search windows, coefficient tables, multi-pass
//! temporaries):
//!
//! | # | app | domain |
//! |---|-----|--------|
//! | 1 | [`full_search_me`] | motion estimation (full search, QCIF) |
//! | 2 | [`hierarchical_me`] | motion estimation (3-level, QSDPCM-style) |
//! | 3 | [`video_encoder`] | video encoding (MC + DCT + quant loop) |
//! | 4 | [`jpeg_enc`] | image coding (8×8 DCT, quant, zig-zag) |
//! | 5 | [`cavity_detect`] | medical imaging (the DTSE cavity detector) |
//! | 6 | [`wavelet`] | image transform (2-level 2-D DWT) |
//! | 7 | [`sobel_edge`] | image filtering (3×3 gradient) |
//! | 8 | [`fir_bank`] | audio (FIR filter bank) |
//! | 9 | [`lpc_voice`] | speech coding (autocorrelation + Levinson–Durbin) |
//!
//! Every module exposes a `Params` struct (sizes are configurable so tests
//! can shrink them) and an `app()` constructor returning an
//! [`Application`]. [`all_apps`] returns the full suite at default sizes —
//! the configuration the figure harnesses in `mhla-bench` run.
//!
//! # Example
//!
//! ```
//! let apps = mhla_apps::all_apps();
//! assert_eq!(apps.len(), 9);
//! for app in &apps {
//!     assert!(app.program.validate().is_ok());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mhla_ir::Program;

pub mod cavity_detect;
pub mod fir_bank;
pub mod full_search_me;
pub mod hierarchical_me;
pub mod jpeg_enc;
pub mod lpc_voice;
pub mod sobel_edge;
pub mod video_encoder;
pub mod wavelet;

/// Application domain, following the paper's taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Domain {
    /// Block-matching motion estimation.
    MotionEstimation,
    /// Video encoding loops (MC, transform, quantization).
    VideoEncoding,
    /// Still-image and medical-image processing.
    ImageProcessing,
    /// Audio / speech processing.
    AudioProcessing,
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Domain::MotionEstimation => "motion estimation",
            Domain::VideoEncoding => "video encoding",
            Domain::ImageProcessing => "image processing",
            Domain::AudioProcessing => "audio processing",
        })
    }
}

/// One benchmark application: a program plus evaluation defaults.
#[derive(Clone, Debug)]
pub struct Application {
    /// The kernel as loop-nest IR.
    pub program: Program,
    /// Domain bucket (for reporting).
    pub domain: Domain,
    /// Scratchpad capacity (bytes) used for the headline single-point
    /// figures; chosen so the dominant working set fits with room for
    /// double buffering.
    pub default_scratchpad: u64,
    /// One-line description of what the kernel models.
    pub description: &'static str,
}

impl Application {
    /// Short name (the program name).
    pub fn name(&self) -> &str {
        self.program.name()
    }
}

/// The full nine-application suite at default (paper-era) sizes.
pub fn all_apps() -> Vec<Application> {
    vec![
        full_search_me::app(),
        hierarchical_me::app(),
        video_encoder::app(),
        jpeg_enc::app(),
        cavity_detect::app(),
        wavelet::app(),
        sobel_edge::app(),
        fir_bank::app(),
        lpc_voice::app(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nine_distinct_valid_apps() {
        let apps = all_apps();
        assert_eq!(apps.len(), 9);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9, "names must be unique");
        for app in &apps {
            assert!(app.program.validate().is_ok(), "{} invalid", app.name());
            assert!(app.program.stmt_count() > 0, "{} empty", app.name());
            assert!(app.default_scratchpad > 0);
            assert!(!app.description.is_empty());
        }
    }

    #[test]
    fn all_four_domains_are_covered() {
        let apps = all_apps();
        for d in [
            Domain::MotionEstimation,
            Domain::VideoEncoding,
            Domain::ImageProcessing,
            Domain::AudioProcessing,
        ] {
            assert!(apps.iter().any(|a| a.domain == d), "domain {d} not covered");
        }
    }

    #[test]
    fn every_app_has_exploitable_reuse() {
        // MHLA is pointless without reuse; every workload must offer at
        // least one candidate with reuse factor > 1.
        for app in all_apps() {
            let reuse = mhla_reuse::ReuseAnalysis::analyze(&app.program);
            let best = reuse
                .arrays()
                .flat_map(|ar| ar.candidates().iter())
                .map(|c| c.reuse_factor())
                .fold(0.0f64, f64::max);
            assert!(
                best > 1.5,
                "{} offers no reuse (best factor {best:.2})",
                app.name()
            );
        }
    }
}
