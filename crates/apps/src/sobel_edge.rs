//! Sobel edge detection: 3×3 gradient convolution with coefficient tables.
//!
//! The inner product reads a 3×3 pixel neighbourhood and the two 3×3
//! kernel tables for every output pixel. The tables have astronomical
//! reuse; the image offers a classic 3-row sliding band at the row loop.

use mhla_ir::{ElemType, Program, ProgramBuilder};

use crate::{Application, Domain};

/// Kernel dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Params {
    /// Image width in pixels.
    pub width: u64,
    /// Image height in pixels.
    pub height: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 320,
            height: 240,
        }
    }
}

/// Builds the kernel.
///
/// # Panics
///
/// Panics if the image is smaller than the 3×3 support.
pub fn program(p: Params) -> Program {
    assert!(p.width >= 3 && p.height >= 3, "image below filter support");
    let (w, h) = (p.width as i64, p.height as i64);

    let mut b = ProgramBuilder::new("sobel_edge");
    let img = b.array("img", &[p.height, p.width], ElemType::U8);
    let gx = b.array("gx_tab", &[3, 3], ElemType::I16);
    let gy = b.array("gy_tab", &[3, 3], ElemType::I16);
    let out = b.array("edges", &[p.height, p.width], ElemType::U8);

    let ly = b.begin_loop("y", 1, h - 1, 1);
    let lx = b.begin_loop("x", 1, w - 1, 1);
    let lky = b.begin_loop("ky", 0, 3, 1);
    let lkx = b.begin_loop("kx", 0, 3, 1);
    let (y, x, ky, kx) = (b.var(ly), b.var(lx), b.var(lky), b.var(lkx));
    b.stmt("mac")
        .read(
            img,
            vec![y.clone() + ky.clone() - 1, x.clone() + kx.clone() - 1],
        )
        .read(gx, vec![ky.clone(), kx.clone()])
        .read(gy, vec![ky, kx])
        .compute_cycles(6)
        .finish();
    b.end_loop();
    b.end_loop();
    b.stmt("store")
        .write(out, vec![y, x])
        .compute_cycles(6) // magnitude + clamp
        .finish();
    b.end_loop();
    b.end_loop();
    b.finish()
}

/// The application at default (QVGA) size.
pub fn app() -> Application {
    Application {
        program: program(Params::default()),
        domain: Domain::ImageProcessing,
        default_scratchpad: 4 * 1024,
        description: "Sobel 3x3 gradient edge detection, QVGA",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_tables_have_per_pixel_reuse() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let gx = prog.array_by_name("gx_tab").unwrap();
        let whole = reuse.array(gx).whole_array().unwrap();
        let pixels = 318u64 * 238;
        assert_eq!(whole.accesses_served, pixels * 9);
        assert_eq!(whole.transfers_full, 9);
        assert!(whole.reuse_factor() > 70_000.0);
    }

    #[test]
    fn row_band_slides_one_row() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let img = prog.array_by_name("img").unwrap();
        let y = prog
            .loops()
            .find(|(_, l)| l.name == "y")
            .map(|(id, _)| id)
            .unwrap();
        let cc = reuse.array(img).at(y).unwrap();
        assert_eq!(cc.footprint.widths, vec![3, 320]);
        assert_eq!(cc.footprint.shifts, vec![1, 0]);
        assert_eq!(cc.footprint.delta_elements(), 320);
    }

    #[test]
    fn neighbourhood_candidate_at_x_is_3x3() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let img = prog.array_by_name("img").unwrap();
        let x = prog
            .loops()
            .find(|(_, l)| l.name == "x")
            .map(|(id, _)| id)
            .unwrap();
        let cc = reuse.array(img).at(x).unwrap();
        assert_eq!(cc.footprint.widths, vec![3, 3]);
        assert_eq!(cc.footprint.delta_elements(), 3, "one new column");
    }
}
