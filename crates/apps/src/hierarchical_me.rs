//! Three-level hierarchical motion estimation (QSDPCM-style).
//!
//! The QSDPCM video coder — a standard DTSE/MHLA benchmark — estimates
//! motion on a 4:1 subsampled frame first, refines on a 2:1 subsampled
//! frame, and finishes at full resolution with a small window. The
//! subsampled frames are *internal temporaries* (produced by the kernel
//! itself), so MHLA can home them on-chip outright instead of copying.

use mhla_ir::{AffineExpr, ElemType, Program, ProgramBuilder};

use crate::{Application, Domain};

/// Kernel dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Params {
    /// Frame width (full resolution).
    pub width: u64,
    /// Frame height (full resolution).
    pub height: u64,
    /// Block edge at full resolution.
    pub block: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 176,
            height: 144,
            block: 16,
        }
    }
}

/// Builds the kernel.
///
/// # Panics
///
/// Panics unless width and height are multiples of `block` and of 4
/// (the frame must tile into blocks at full resolution and subsample
/// cleanly to the 4:1 pyramid).
pub fn program(p: Params) -> Program {
    for dim in [p.width, p.height] {
        assert!(
            dim.is_multiple_of(p.block) && dim.is_multiple_of(4),
            "frame must tile into blocks and subsample 4:1"
        );
    }
    let mut b = ProgramBuilder::new("hierarchical_me");
    let cur = b.array("cur", &[p.height, p.width], ElemType::U8);
    let prev = b.array("prev", &[p.height + 8, p.width + 8], ElemType::U8);
    // Subsampled pyramids (internal temporaries).
    let cur4 = b.array("cur4", &[p.height / 4, p.width / 4], ElemType::U8);
    let prev4 = b.array("prev4", &[p.height / 4 + 4, p.width / 4 + 4], ElemType::U8);
    let mv = b.array(
        "mv",
        &[p.height / p.block, p.width / p.block, 2],
        ElemType::I16,
    );

    // Pass 1: subsample both frames 4:1 (mean of 4x4 → one pixel).
    let lsy = b.begin_loop("sy", 0, (p.height / 4) as i64, 1);
    let lsx = b.begin_loop("sx", 0, (p.width / 4) as i64, 1);
    let lky = b.begin_loop("ky", 0, 4, 1);
    let lkx = b.begin_loop("kx", 0, 4, 1);
    let (sy, sx, ky, kx) = (b.var(lsy), b.var(lsx), b.var(lky), b.var(lkx));
    b.stmt("sub_acc")
        .read(
            cur,
            vec![sy.clone() * 4 + ky.clone(), sx.clone() * 4 + kx.clone()],
        )
        .read(prev, vec![sy.clone() * 4 + ky, sx.clone() * 4 + kx])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.end_loop();
    b.stmt("sub_store")
        .write(cur4, vec![sy.clone(), sx.clone()])
        .write(prev4, vec![sy, sx])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.end_loop();

    // Pass 2: coarse full search on the 4:1 pyramid (±4 at quarter res).
    let bq = (p.block / 4) as i64; // 4x4 blocks at quarter resolution
    let lmy = b.begin_loop("cmby", 0, (p.height / p.block) as i64, 1);
    let lmx = b.begin_loop("cmbx", 0, (p.width / p.block) as i64, 1);
    let ldy = b.begin_loop("cdy", 0, 9, 1);
    let ldx = b.begin_loop("cdx", 0, 9, 1);
    let lyy = b.begin_loop("cy", 0, bq, 1);
    let lxx = b.begin_loop("cx", 0, bq, 1);
    let (my, mx, dy, dx, y, x) = (
        b.var(lmy),
        b.var(lmx),
        b.var(ldy),
        b.var(ldx),
        b.var(lyy),
        b.var(lxx),
    );
    b.stmt("coarse_sad")
        .read(
            cur4,
            vec![my.clone() * bq + y.clone(), mx.clone() * bq + x.clone()],
        )
        .read(
            prev4,
            vec![my.clone() * bq + dy + y, mx.clone() * bq + dx + x],
        )
        .compute_cycles(8)
        .finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();
    b.end_loop();
    b.stmt("coarse_best")
        .write(mv, vec![my, mx, AffineExpr::zero()])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.end_loop();

    // Pass 3: full-resolution refinement, ±2 around the coarse vector.
    let blk = p.block as i64;
    let lfy = b.begin_loop("fmby", 0, (p.height / p.block) as i64, 1);
    let lfx = b.begin_loop("fmbx", 0, (p.width / p.block) as i64, 1);
    let lrdy = b.begin_loop("rdy", 0, 5, 1);
    let lrdx = b.begin_loop("rdx", 0, 5, 1);
    let lry = b.begin_loop("ry", 0, blk, 1);
    let lrx = b.begin_loop("rx", 0, blk, 1);
    let (fy, fx, rdy, rdx, ry, rx) = (
        b.var(lfy),
        b.var(lfx),
        b.var(lrdy),
        b.var(lrdx),
        b.var(lry),
        b.var(lrx),
    );
    b.stmt("refine_sad")
        .read(
            cur,
            vec![fy.clone() * blk + ry.clone(), fx.clone() * blk + rx.clone()],
        )
        .read(
            prev,
            vec![fy.clone() * blk + rdy + ry, fx.clone() * blk + rdx + rx],
        )
        .compute_cycles(8)
        .finish();
    b.end_loop();
    b.end_loop();
    b.end_loop();
    b.end_loop();
    b.stmt("refine_best")
        .read(mv, vec![fy.clone(), fx.clone(), AffineExpr::zero()])
        .write(mv, vec![fy, fx, AffineExpr::constant_expr(1)])
        .compute_cycles(4)
        .finish();
    b.end_loop();
    b.end_loop();
    b.finish()
}

/// The application at default (QCIF) size.
pub fn app() -> Application {
    Application {
        program: program(Params::default()),
        domain: Domain::MotionEstimation,
        default_scratchpad: 16 * 1024,
        description: "3-level hierarchical motion estimation (QSDPCM-style), QCIF",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pyramids_are_internal_temporaries() {
        let prog = program(Params::default());
        let classes = mhla_core::classify_arrays(&prog, &[]);
        let cur4 = prog.array_by_name("cur4").unwrap();
        let prev4 = prog.array_by_name("prev4").unwrap();
        let cur = prog.array_by_name("cur").unwrap();
        assert_eq!(classes[cur4.index()], mhla_core::ArrayClass::Internal);
        assert_eq!(classes[prev4.index()], mhla_core::ArrayClass::Internal);
        assert_eq!(classes[cur.index()], mhla_core::ArrayClass::External);
    }

    #[test]
    fn three_passes_in_sequence() {
        let prog = program(Params::default());
        // Three top-level nests (subsample, coarse, refine).
        assert_eq!(prog.roots().len(), 3);
        let tl = prog.timeline();
        let spans: Vec<_> = prog.roots().iter().map(|&r| tl.node_span(r)).collect();
        assert!(spans[0].end <= spans[1].start);
        assert!(spans[1].end <= spans[2].start);
    }

    #[test]
    fn coarse_pass_reads_the_quarter_pyramid() {
        let prog = program(Params::default());
        let info = prog.info();
        let cur4 = prog.array_by_name("cur4").unwrap();
        let counts = info.access_counts(cur4);
        // 99 blocks × 81 displacements × 16 px reads + 1584 writes.
        assert_eq!(counts.reads, 99 * 81 * 16);
        assert_eq!(counts.writes, (144 / 4) * (176 / 4));
    }
}
