//! Full-search block-matching motion estimation (QCIF).
//!
//! The classic MHLA showcase: for every 16×16 macroblock of the current
//! frame, all displacements in a ±`search` window of the previous frame are
//! evaluated with a sum-of-absolute-differences kernel. Reuse structure:
//!
//! * the current macroblock (256 B) is re-read for every displacement —
//!   a copy at the macroblock loop serves `(2·search+1)²` scans;
//! * the search window of the previous frame slides macroblock by
//!   macroblock — a copy at the macroblock loop with sliding-window updates
//!   transfers only the newly exposed columns.

use mhla_ir::{ElemType, Program, ProgramBuilder};

use crate::{Application, Domain};

/// Kernel dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Params {
    /// Frame width in pixels.
    pub width: u64,
    /// Frame height in pixels.
    pub height: u64,
    /// Macroblock edge (16 for MPEG-class codecs).
    pub block: u64,
    /// Search radius; the window spans `2·search + 1` displacements.
    pub search: u64,
}

impl Default for Params {
    /// QCIF luma with the paper-era ±8 search range.
    fn default() -> Self {
        Params {
            width: 176,
            height: 144,
            block: 16,
            search: 8,
        }
    }
}

/// Builds the kernel for the given dimensions.
///
/// # Panics
///
/// Panics if the frame is not a whole number of blocks.
pub fn program(p: Params) -> Program {
    assert!(
        p.width.is_multiple_of(p.block) && p.height.is_multiple_of(p.block),
        "frame must be a whole number of blocks"
    );
    let mb_x = p.width / p.block;
    let mb_y = p.height / p.block;
    let window = 2 * p.search + 1;

    let mut b = ProgramBuilder::new("full_search_me");
    let cur = b.array("cur", &[p.height, p.width], ElemType::U8);
    // Previous frame padded by `search` on every side so subscripts stay
    // non-negative (halo border, standard for search-window kernels).
    let prev = b.array(
        "prev",
        &[p.height + 2 * p.search, p.width + 2 * p.search],
        ElemType::U8,
    );
    let mv = b.array("mv", &[mb_y, mb_x, 2], ElemType::I16);

    let lmy = b.begin_loop("mby", 0, mb_y as i64, 1);
    let lmx = b.begin_loop("mbx", 0, mb_x as i64, 1);
    let ldy = b.begin_loop("dy", 0, window as i64, 1);
    let ldx = b.begin_loop("dx", 0, window as i64, 1);
    let ly = b.begin_loop("y", 0, p.block as i64, 1);
    let lx = b.begin_loop("x", 0, p.block as i64, 1);
    let (mby, mbx, dy, dx, y, x) = (
        b.var(lmy),
        b.var(lmx),
        b.var(ldy),
        b.var(ldx),
        b.var(ly),
        b.var(lx),
    );
    let blk = p.block as i64;
    b.stmt("sad")
        .read(
            cur,
            vec![mby.clone() * blk + y.clone(), mbx.clone() * blk + x.clone()],
        )
        .read(
            prev,
            vec![mby.clone() * blk + dy + y, mbx.clone() * blk + dx + x],
        )
        .compute_cycles(8) // abs-diff, compare, accumulate, addressing
        .finish();
    b.end_loop(); // x
    b.end_loop(); // y
    b.end_loop(); // dx
    b.end_loop(); // dy
    let (zero, one) = (
        mhla_ir::AffineExpr::zero(),
        mhla_ir::AffineExpr::constant_expr(1),
    );
    b.stmt("best")
        .write(mv, vec![mby.clone(), mbx.clone(), zero])
        .write(mv, vec![mby, mbx, one])
        .compute_cycles(8)
        .finish();
    b.end_loop(); // mbx
    b.end_loop(); // mby
    b.finish()
}

/// The application at default (QCIF, ±8) size.
pub fn app() -> Application {
    Application {
        program: program(Params::default()),
        domain: Domain::MotionEstimation,
        // Search window (31+16)·(31+16) ≈ 2.2 KiB with double buffering.
        default_scratchpad: 16 * 1024,
        description: "full-search block-matching motion estimation, QCIF, ±8 window",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhla_ir::AccessKind;

    #[test]
    fn access_counts_match_the_nest() {
        let p = Params {
            width: 32,
            height: 32,
            block: 16,
            search: 2,
        };
        let prog = program(p);
        let info = prog.info();
        let cur = prog.array_by_name("cur").unwrap();
        let prev = prog.array_by_name("prev").unwrap();
        let sad_execs = 4 * 5 * 5 * 256; // 4 MBs × 25 displacements × 256 px
        assert_eq!(info.access_count(cur, AccessKind::Read), sad_execs);
        assert_eq!(info.access_count(prev, AccessKind::Read), sad_execs);
        let mv = prog.array_by_name("mv").unwrap();
        assert_eq!(info.access_count(mv, AccessKind::Write), 2 * 4);
    }

    #[test]
    fn current_block_candidate_is_one_macroblock() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let cur = prog.array_by_name("cur").unwrap();
        // The candidate at the dx loop (one displacement's reads of cur) is
        // exactly one 16×16 macroblock and never slides with dx.
        let mbx_loop = prog
            .loops()
            .find(|(_, l)| l.name == "dx")
            .map(|(id, _)| id)
            .unwrap();
        let cc = reuse.array(cur).at(mbx_loop).unwrap();
        assert_eq!(cc.footprint.widths, vec![16, 16]);
        assert_eq!(cc.footprint.delta_elements(), 0, "block ignores dx");
    }

    #[test]
    fn search_window_slides_by_one_block_column() {
        let prog = program(Params::default());
        let reuse = mhla_reuse::ReuseAnalysis::analyze(&prog);
        let prev = prog.array_by_name("prev").unwrap();
        let mbx_loop = prog
            .loops()
            .find(|(_, l)| l.name == "mbx")
            .map(|(id, _)| id)
            .unwrap();
        let cc = reuse.array(prev).at(mbx_loop).unwrap();
        // Window = (16+16) rows × (16+16) cols around each macroblock.
        assert_eq!(cc.footprint.widths, vec![32, 32]);
        assert_eq!(cc.footprint.shifts, vec![0, 16]);
        // Sliding update halves the refill volume.
        assert!(cc.transfers_delta < cc.transfers_full);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn rejects_fractional_blocks() {
        let _ = program(Params {
            width: 30,
            ..Params::default()
        });
    }
}
