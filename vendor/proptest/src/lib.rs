//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this crate provides the
//! API subset the workspace's property tests use: the [`proptest!`] macro,
//! [`Strategy`](strategy::Strategy) with `prop_map`, integer-range / tuple / array / vec
//! strategies, `any::<bool>()`, `any::<prop::sample::Index>()`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; minimization is manual.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   function name, so runs are reproducible; set `PROPTEST_SEED` to vary.
//! * **Default case count is 64** (instead of 256) to keep `cargo test`
//!   turnaround sane; override per test with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
//!   `PROPTEST_CASES`.

#![forbid(unsafe_code)]

/// Glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop};
    // Macros are exported at the crate root; re-exported here so
    // `use proptest::prelude::*` brings them in like the real crate does.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic pseudo-random generation (xorshift64*).
pub mod test_runner {
    /// Run configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Explicit test-case failure (the `Err` side of a proptest body).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed with a reason.
        Fail(String),
        /// The case asked to be skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing result with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// xorshift64* generator, seeded per test function.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for a named test, mixing `PROPTEST_SEED` if set.
        pub fn for_test(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SEED") {
                for b in extra.bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            TestRng { state: seed.max(1) }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant at these magnitudes for testing.
            self.next_u64() % n
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates random values of an associated type.
    ///
    /// The real crate's strategies also know how to *shrink*; this
    /// stand-in only generates.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returning a constant.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

/// `prop::…` namespace (collections, arrays, samples).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Anything usable as the size argument of [`vec()`].
        pub trait SizeRange {
            /// Draws a concrete length.
            fn draw(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn draw(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn draw(&self, rng: &mut TestRng) -> usize {
                Strategy::generate(self, rng)
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn draw(&self, rng: &mut TestRng) -> usize {
                Strategy::generate(self, rng)
            }
        }

        /// Strategy for `Vec`s whose elements come from `element`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.draw(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `[S::Value; N]`.
        pub struct UniformArrayStrategy<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
            type Value = [S::Value; N];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
                std::array::from_fn(|_| self.element.generate(rng))
            }
        }

        /// `[T; 3]` drawn element-wise from `element`.
        pub fn uniform3<S: Strategy>(element: S) -> UniformArrayStrategy<S, 3> {
            UniformArrayStrategy { element }
        }

        /// `[T; 4]` drawn element-wise from `element`.
        pub fn uniform4<S: Strategy>(element: S) -> UniformArrayStrategy<S, 4> {
            UniformArrayStrategy { element }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        /// A random index into a collection of as-yet-unknown length.
        #[derive(Clone, Copy, Debug)]
        pub struct Index {
            raw: u64,
        }

        impl Index {
            pub(crate) fn from_raw(raw: u64) -> Self {
                Index { raw }
            }

            /// Resolves against a concrete length (must be nonzero).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.raw % len as u64) as usize
            }
        }
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T` — `any::<bool>()`, `any::<Index>()`, ….
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<bool>()`.
pub struct AnyBool;

impl strategy::Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Strategy behind `any::<prop::sample::Index>()`.
pub struct AnyIndex;

impl strategy::Strategy for AnyIndex {
    type Value = prop::sample::Index;
    fn generate(&self, rng: &mut test_runner::TestRng) -> prop::sample::Index {
        prop::sample::Index::from_raw(rng.next_u64())
    }
}

impl Arbitrary for prop::sample::Index {
    type Strategy = AnyIndex;
    fn arbitrary() -> AnyIndex {
        AnyIndex
    }
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `body` over random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let __strat = ($($strat,)+);
            for __case in 0..__config.cases {
                let __vals = $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                let __printable = format!("{:?}", &__vals);
                let ($($pat,)+) = __vals;
                let __ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                ));
                match __ran {
                    Ok(Ok(())) => {}
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                    Ok(Err(e)) => {
                        panic!(
                            "proptest case {}/{} failed ({e}) for inputs: {}",
                            __case + 1,
                            __config.cases,
                            __printable
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} failed for inputs: {}",
                            __case + 1,
                            __config.cases,
                            __printable
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Asserts within a proptest body (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&v));
            let u = Strategy::generate(&(8u64..64), &mut rng);
            assert!((8..64).contains(&u));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = crate::test_runner::TestRng::for_test("x");
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::test_runner::TestRng::for_test("x");
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself round-trips strategies, tuples and maps.
        #[test]
        fn macro_works((a, b) in (0i64..10, 0i64..10), v in prop::collection::vec(0u8..4, 0..6)) {
            prop_assume!(a + b < 100);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.iter().filter(|&&x| x > 3).count(), 0);
        }
    }
}
