//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so this crate provides the
//! API subset the workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: after a short warm-up, each sample times a batch of
//! iterations sized so one sample lasts ≥ ~10 ms (one iteration for the
//! heavyweight pipeline benches). Reported are min / median / max of the
//! per-iteration times across samples. No HTML reports, no statistical
//! regression testing — numbers print to stdout.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Parses CLI args (accepted and ignored — `cargo bench` passes
    /// `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&name.into(), sample_size, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter).
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up + batch sizing: aim for >= ~10 ms per sample so cheap
        // functions are not timed at clock resolution.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let batch = if once >= Duration::from_millis(10) {
            1
        } else {
            let per = once.as_nanos().max(50) as u64;
            (10_000_000 / per).clamp(1, 1_000_000)
        };
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let total = t.elapsed();
            self.samples.push(total / batch as u32);
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let med = b.samples[b.samples.len() / 2];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(med),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Groups benchmark functions into a callable harness entry.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
