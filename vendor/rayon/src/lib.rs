//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no network access, so this crate provides the
//! small API subset the workspace uses — `par_iter` / `into_par_iter`
//! followed by `map`/`collect` and friends — with *genuine* data
//! parallelism built on `std::thread::scope`. Items are split into
//! contiguous chunks, one per available core, and results are concatenated
//! in order, so `collect()` observes the exact sequential ordering rayon
//! guarantees.
//!
//! Not implemented: work stealing, nested pools, adaptive splitting. For
//! the coarse-grained sweep points this workspace parallelizes, static
//! chunking is within noise of the real thing.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// The glob-importable API surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn par_map_vec<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<I> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("worker thread panicked"));
        }
        out
    })
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("worker thread panicked"))
    })
}

/// A materialized parallel iterator: items buffered, stages fused at
/// `collect`/`for_each` time and executed across threads.
pub trait ParallelIterator: Sized + Send {
    /// Item type flowing out of this stage.
    type Item: Send;

    /// Materializes the source items (internal driver).
    fn items(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<O, F>(self, f: F) -> ParMap<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync + Send,
    {
        ParMap { base: self, f }
    }

    /// Collects the results, preserving input order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.items())
    }

    /// Runs `f` on every item in parallel (order unspecified).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        par_map_vec(self.items(), f);
    }

    /// Number of items.
    fn count(self) -> usize {
        self.items().len()
    }
}

/// `map` stage of a parallel pipeline.
pub struct ParMap<B, F> {
    base: B,
    f: F,
}

impl<B, O, F> ParallelIterator for ParMap<B, F>
where
    B: ParallelIterator,
    O: Send,
    F: Fn(B::Item) -> O + Sync + Send,
{
    type Item = O;

    fn items(self) -> Vec<O> {
        par_map_vec(self.base.items(), self.f)
    }
}

/// Root of a parallel pipeline: a buffered vector of items.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;

    fn items(self) -> Vec<T> {
        self.items
    }
}

/// Conversion into a parallel iterator (owning).
pub trait IntoParallelIterator {
    /// Item type of the produced iterator.
    type Item: Send;
    /// The produced iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParVec<usize>;
    fn into_par_iter(self) -> ParVec<usize> {
        ParVec {
            items: self.collect(),
        }
    }
}

/// Conversion into a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send + 'a;
    /// The produced iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParVec<&'a T>;
    fn par_iter(&'a self) -> ParVec<&'a T> {
        ParVec {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParVec<&'a T>;
    fn par_iter(&'a self) -> ParVec<&'a T> {
        ParVec {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u32, 2, 3];
        let out: Vec<u32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
        drop(v);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
